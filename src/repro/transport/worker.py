"""Multi-process shard workers and the :class:`ProcessCluster` front door.

:class:`repro.cluster.MPNCluster` shards sessions across services *in
one process*; this module puts each shard in its **own OS process**
behind the wire server — the deployment shape the in-process cluster
was rehearsing for.  Each worker process builds its shard's space from
a picklable zero-argument factory, wraps it in an epoch-published
:class:`repro.space.SharedSpace`, and serves a
:class:`~repro.service.MPNService` through a
:class:`~repro.transport.server.WireServer` on an OS-assigned port.

:class:`ProcessCluster` is the front door: it mirrors
:class:`~repro.cluster.MPNCluster`'s routing exactly — the same
consistent-hash ring over the same cluster-assigned session ids — but
every hop is a wire round-trip through a per-shard
:class:`~repro.transport.client.RemoteBackend`.  Fan-out semantics
match the in-process cluster:

* **Waves** (:meth:`report_many`) are validated on every involved
  worker first (the ``validate_events`` control op mutates nothing),
  then each worker serves its sub-batch in request order — a bad event
  anywhere leaves every worker untouched, the single-service
  all-or-nothing contract.
* **POI churn** (:meth:`update_pois`) validates the whole batch
  against the front door's local mirror first (the index's delta layer
  raises on a bad removal before any worker hears anything), then fans
  the batch to *every* worker; each applies it to its own replica —
  one ``bulk_update``, hence exactly one new
  :class:`~repro.space.SharedSpace` epoch per worker per batch — and
  runs its own Lemma-1 re-notification sweep.  Merged notifications
  come back in ascending session order, as a single service emits
  them.
* **Metrics** merge across workers exactly as shard metrics merge
  in-process — retired workers' aggregates included (their traffic was
  served).

Workers are **replicas by construction**: every process calls the same
factory, so the factories must be deterministic (build from literal
data or a seeded generator).  That is what makes mirror-side batch
validation sound and keeps cluster answers bit-identical to a single
service — proven over the wire by ``tests/test_wire_equivalence.py``.

Elastic operations
------------------

:meth:`ProcessCluster.add_shard` spawns a **fresh worker process**
mid-run: the newcomer builds its replica from the factory, replays the
cluster's accumulated churn log (each ``update_pois`` batch, in order,
so its index — and its epoch counter — catches up with the incumbents;
the log grows with churn, the price of factory-built replicas), and
then receives exactly the ring's minimal remap set of sessions through
the ``export_session`` / ``import_session`` control ops.
:meth:`ProcessCluster.remove_shard` is the reverse: the departing
worker's sessions migrate to the survivors, its aggregate counters
fold into the cluster's retired ledger, and the process drains and
exits.  Migration installs snapshots verbatim — no recomputation, no
metric charges — so a fleet replayed across a reshard emits
bit-identical notifications (``tests/test_elastic_equivalence.py``).

Shutdown (:meth:`ProcessCluster.close`) is drain-and-stop: each worker
acknowledges the ``shutdown`` control op, finishes its in-flight
requests, closes its listener, and exits 0; the front door then joins
the processes.  A worker that outlives the timeout is terminated, and
any terminated or non-zero exit is surfaced as a
:class:`WorkerShutdownError` (pass ``raise_on_error=False`` for a
best-effort close); ``close`` is idempotent either way.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.cluster.hashring import HashRing
from repro.cluster.load import ShardLoad, collect_shard_loads, hot_shards
from repro.service.api import (
    Request,
    Response,
    ServiceSnapshot,
    SessionSnapshot,
    dispatch_request,
)
from repro.service.messages import (
    MemberState,
    Notification,
    ReportEvent,
    SessionHandle,
)
from repro.service.session import Prober
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.policies import Policy
from repro.space import Space, share_space
from repro.transport.client import RemoteBackend
from repro.transport.framing import DEFAULT_MAX_FRAME_BYTES
from repro.transport.server import DEFAULT_MAX_INFLIGHT

SpaceFactory = Callable[[], Space]


class WorkerShutdownError(RuntimeError):
    """One or more worker processes failed to drain cleanly.

    ``exitcodes`` maps shard id to the process's final exit code —
    negative for a signal (``-15`` = had to be terminated after
    outliving the drain timeout), positive for a worker that exited
    with an error of its own.
    """

    def __init__(self, exitcodes: dict[int, Optional[int]]):
        self.exitcodes = dict(exitcodes)
        detail = ", ".join(
            f"worker {shard_id}: exit code {code}"
            for shard_id, code in sorted(self.exitcodes.items())
        )
        super().__init__(f"workers failed to drain cleanly ({detail})")


@dataclass(frozen=True)
class UniformPoiSpaceFactory:
    """A picklable, deterministic space factory: seeded uniform POIs.

    Worker processes are spawned, so their space factories must pickle
    — a lambda closing over a POI list does not.  This one carries only
    literals; every call (each worker, the front door's mirror, an
    in-process twin in an equivalence test) rebuilds the identical
    tree, which is exactly the replicas-by-construction contract.
    """

    n_pois: int = 300
    seed: int = 7
    world: tuple[float, float, float, float] = (0.0, 0.0, 1000.0, 1000.0)

    def __call__(self) -> Space:
        from repro.geometry.rect import Rect
        from repro.space import as_space
        from repro.workloads.poi import build_poi_tree, uniform_pois

        x0, y0, x1, y1 = self.world
        pois = uniform_pois(self.n_pois, Rect(x0, y0, x1, y1), seed=self.seed)
        return as_space(build_poi_tree(pois))


@dataclass(frozen=True)
class GridNetworkSpaceFactory:
    """Picklable road-network replica: perturbed grid + seeded POI nodes."""

    grid_size: int = 5
    seed: int = 33
    n_pois: int = 10
    poi_seed: int = 1

    def __call__(self) -> Space:
        import random

        from repro.network_ext.space import NetworkSpace
        from repro.space.network import NetworkPOISpace

        net = NetworkSpace.from_grid(grid_size=self.grid_size, seed=self.seed)
        rng = random.Random(self.poi_seed)
        pois = rng.sample(list(net.graph.nodes), self.n_pois)
        return NetworkPOISpace(net, pois)


def _worker_main(
    shard_index: int,
    factory: SpaceFactory,
    extra_factories: dict[str, SpaceFactory],
    batched: bool,
    host: str,
    ready_queue,
    max_frame_bytes: int,
    max_inflight: int,
    request_timeout: Optional[float],
) -> None:  # pragma: no cover - runs in a child process
    """One shard: build the replica space, serve it, drain on shutdown."""
    import asyncio

    from repro.service.service import MPNService
    from repro.transport.server import WireServer

    try:
        service = MPNService(share_space(factory()), batched=batched)
        for name, extra in extra_factories.items():
            service.add_space(name, share_space(extra()))
        server = WireServer(
            service,
            host=host,
            port=0,
            max_frame_bytes=max_frame_bytes,
            max_inflight=max_inflight,
            request_timeout=request_timeout,
        )

        async def main() -> None:
            address = await server.start()
            ready_queue.put((shard_index, address))
            await server.serve_forever()

        asyncio.run(main())
    except Exception as exc:
        ready_queue.put((shard_index, exc))
        raise


def _require_space_ref(space: Union[None, str, Space]) -> Optional[str]:
    if space is None or isinstance(space, str):
        return space
    raise ValueError(
        "cluster spaces are per-worker replicas; register the space by "
        "name (extra_spaces=...) and reference it by that name"
    )


class ProcessCluster:
    """A sharded ``ServiceBackend`` over worker *processes* on the wire.

    ``space_factory`` (and each ``extra_spaces`` value) must be a
    picklable zero-argument callable building the shard's space — a
    module-level function or :func:`functools.partial`, not a lambda:
    workers are spawned, and each one (plus the front door's local
    mirror, plus any worker :meth:`add_shard` spawns later) calls it
    once.  ``ring_replicas`` defaults to
    :class:`~repro.cluster.MPNCluster`'s, so both front doors route any
    given session id to the same shard index.

    The front door also keeps client-side session state (probers, the
    mirror space for region decoding) through its per-shard
    :class:`~repro.transport.client.RemoteBackend` objects, so
    :func:`repro.simulation.run_service` drives a process cluster
    exactly like an in-process backend.
    """

    def __init__(
        self,
        num_shards: int,
        space_factory: SpaceFactory,
        *,
        extra_spaces: Optional[dict[str, SpaceFactory]] = None,
        batched: bool = True,
        ring_replicas: int = 64,
        host: str = "127.0.0.1",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: Optional[float] = None,
        spawn_timeout: float = 120.0,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        # Spawn configuration is kept verbatim: add_shard() boots late
        # workers with exactly the parameters the incumbents got.
        self.batched = batched
        self._space_factory = space_factory
        self._extra_spaces = dict(extra_spaces or {})
        self._host = host
        self._max_frame_bytes = max_frame_bytes
        self._max_inflight = max_inflight
        self._request_timeout = request_timeout
        self._spawn_timeout = spawn_timeout
        # The front door's own replica: answers ``.space`` /
        # ``get_space`` reads locally and validates every churn batch
        # before any worker sees it.
        self._mirror = share_space(space_factory())
        self._mirrors: dict[str, Space] = {"default": self._mirror}
        for name, factory in self._extra_spaces.items():
            self._mirrors[name] = share_space(factory())
        self._ring = HashRing(range(num_shards), replicas=ring_replicas)
        self._next_id = 0
        self._next_shard_id = num_shards  # shard ids are never recycled
        self._closed = False
        # Every accepted churn batch, in order — the catch-up feed a
        # late-spawned worker replays so its factory-built replica
        # reaches the cluster's live POI set (and epoch count).
        self._churn_log: list[tuple[tuple, tuple, Optional[str]]] = []
        self._retired = SimulationMetrics()
        self._load_baselines: dict[int, tuple[int, int]] = {}

        spawned = self._spawn_workers(list(range(num_shards)))
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._all_processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._shards: dict[int, RemoteBackend] = {}
        for shard_id, (process, address) in spawned.items():
            self._processes[shard_id] = process
            self._all_processes[shard_id] = process
            self._shards[shard_id] = self._connect(address)

    def _spawn_workers(
        self, shard_ids: Sequence[int]
    ) -> dict[int, tuple]:
        """Boot one worker process per id; returns ``{id: (process,
        address)}``.  All-or-nothing: a worker failing to start
        terminates every sibling spawned by this call."""
        ctx = multiprocessing.get_context("spawn")
        ready_queue = ctx.Queue()
        processes: dict[int, multiprocessing.process.BaseProcess] = {}
        for shard_id in shard_ids:
            process = ctx.Process(
                target=_worker_main,
                args=(
                    shard_id,
                    self._space_factory,
                    self._extra_spaces,
                    self.batched,
                    self._host,
                    ready_queue,
                    self._max_frame_bytes,
                    self._max_inflight,
                    self._request_timeout,
                ),
                daemon=True,
                name=f"mpn-worker-{shard_id}",
            )
            process.start()
            processes[shard_id] = process
        addresses: dict[int, tuple[str, int]] = {}
        try:
            for _ in shard_ids:
                shard_id, payload = ready_queue.get(
                    timeout=self._spawn_timeout
                )
                if isinstance(payload, Exception):
                    raise RuntimeError(
                        f"worker {shard_id} failed to start: {payload}"
                    ) from payload
                addresses[shard_id] = tuple(payload)
        except Exception:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
                process.join(timeout=10)
            raise
        return {i: (processes[i], addresses[i]) for i in shard_ids}

    def _connect(self, address: tuple[str, int]) -> RemoteBackend:
        # Every shard backend shares the front door's mirrors (regions
        # decode against them) but must NOT apply churn to them — the
        # front door applies each batch to the mirror exactly once.
        return RemoteBackend(
            *address,
            spaces=self._mirrors,
            max_frame_bytes=self._max_frame_bytes,
            mirror_updates=False,
        )

    # ------------------------------------------------------------------
    # Topology + lifecycle
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[RemoteBackend, ...]:
        """The per-worker wire backends in shard-id order (read them,
        don't route around).  Ids are stable but not necessarily
        contiguous after a ``remove_shard``; use :meth:`shard` to
        address one by id."""
        return tuple(self._shards[i] for i in sorted(self._shards))

    def shard_ids(self) -> list[int]:
        """Current shard ids, ascending."""
        return sorted(self._shards)

    def shard(self, shard_id: int) -> RemoteBackend:
        """The wire backend serving ``shard_id``."""
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ValueError(f"no shard {shard_id}") from None

    def shard_for(self, session_id: int) -> int:
        return self._ring.shard_for(session_id)

    def _shard(self, session_id: int) -> RemoteBackend:
        return self._shards[self._ring.shard_for(session_id)]

    def close(self, timeout: float = 30.0, raise_on_error: bool = True) -> None:
        """Drain-and-stop every worker, then join the processes.

        Idempotent — the second call is a no-op.  A worker that
        outlives ``timeout`` is terminated; terminated or non-zero
        exits are raised as :class:`WorkerShutdownError` (carrying the
        per-shard exit codes) unless ``raise_on_error`` is false.
        """
        if self._closed:
            return
        self._closed = True
        for shard in self._shards.values():
            try:
                shard.shutdown_server()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            shard.close()
        failed: dict[int, Optional[int]] = {}
        for shard_id in sorted(self._processes):
            process = self._processes[shard_id]
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
                failed[shard_id] = process.exitcode
            elif process.exitcode not in (0, None):
                failed[shard_id] = process.exitcode
        if failed and raise_on_error:
            raise WorkerShutdownError(failed)

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A shutdown report must not mask an exception already in
        # flight; on the clean path it raises like a direct close().
        self.close(raise_on_error=exc_type is None)

    def worker_exitcodes(self) -> list[Optional[int]]:
        """Exit codes of every worker ever spawned, in shard-id order —
        retired shards included; all zero after graceful drains."""
        return [
            self._all_processes[shard_id].exitcode
            for shard_id in sorted(self._all_processes)
        ]

    # ------------------------------------------------------------------
    # Elastic operations: live reshard, migration, snapshots
    # ------------------------------------------------------------------

    def add_shard(self) -> int:
        """Grow the cluster by one **worker process**, migrating live.

        The newcomer builds its replica from the factory, replays the
        churn log (so its POI set and epoch counter match the
        incumbents), and receives the ring's minimal remap set — every
        moved session crosses the wire as a
        :class:`~repro.service.api.SessionSnapshot` and resumes
        verbatim on the new worker, prober and mirror state moving
        along client-side.  Returns the new shard's id.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        ((process, address),) = self._spawn_workers([shard_id]).values()
        backend = self._connect(address)
        for adds, removes, space in self._churn_log:
            backend.update_pois(adds=adds, removes=removes, space=space)
        new_ring = self._ring.copy()
        new_ring.add_shard(shard_id)
        moved = new_ring.moved_keys(self._ring, self.session_ids())
        self._migrate(moved, {shard_id: backend})
        self._processes[shard_id] = process
        self._all_processes[shard_id] = process
        self._shards[shard_id] = backend
        self._ring = new_ring
        return shard_id

    def remove_shard(self, shard_id: int, timeout: float = 30.0) -> None:
        """Retire one worker process, migrating its sessions out first.

        Only the departing shard's sessions move (the consistent-hash
        guarantee); its aggregate counters fold into the retired
        ledger so cluster metrics stay exact.  The worker then drains
        gracefully; a terminated or non-zero exit raises
        :class:`WorkerShutdownError` *after* the topology change — the
        cluster keeps serving on the survivors either way.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        if shard_id not in self._shards:
            raise ValueError(f"no shard {shard_id}")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        new_ring = self._ring.copy()
        new_ring.remove_shard(shard_id)
        moved = new_ring.moved_keys(self._ring, self.session_ids())
        retiring = self._shards[shard_id]
        self._migrate(moved, {})
        self._retired.merge(retiring.metrics)
        del self._shards[shard_id]
        self._load_baselines.pop(shard_id, None)
        self._ring = new_ring
        self._drain_worker(shard_id, retiring, timeout)

    def _drain_worker(
        self, shard_id: int, backend: RemoteBackend, timeout: float
    ) -> None:
        try:
            backend.shutdown_server()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
        backend.close()
        process = self._processes.pop(shard_id)
        process.join(timeout=timeout)
        failed: dict[int, Optional[int]] = {}
        if process.is_alive():  # pragma: no cover - drain timeout
            process.terminate()
            process.join(timeout=10)
            failed[shard_id] = process.exitcode
        elif process.exitcode not in (0, None):  # pragma: no cover
            failed[shard_id] = process.exitcode
        if failed:  # pragma: no cover - drain failures
            raise WorkerShutdownError(failed)

    def _migrate(
        self,
        moved: dict[int, tuple[int, int]],
        joining: dict[int, RemoteBackend],
    ) -> None:
        """Hand each session in the plan from its old worker to its new
        one (``joining`` holds not-yet-installed backends)."""
        for session_id in sorted(moved):
            source_id, target_id = moved[session_id]
            source = self._shards[source_id]
            target = joining.get(target_id) or self._shards[target_id]
            source.handoff_session(session_id, target)

    def export_session(self, session_id: int) -> SessionSnapshot:
        """Snapshot one session off its ring-routed worker (a read)."""
        return self._shard(session_id).export_session(session_id)

    def import_session(
        self, snapshot: SessionSnapshot, prober: Optional[Prober] = None
    ) -> None:
        """Install a migrated session on its ring-routed worker."""
        self._shard(snapshot.session_id).import_session(
            snapshot, prober=prober
        )
        self._next_id = max(self._next_id, snapshot.session_id + 1)

    def shard_snapshot(self, shard_id: int) -> ServiceSnapshot:
        """One whole worker as a failover envelope (a read)."""
        return self.shard(shard_id).snapshot()

    def restore_shard(
        self,
        shard_id: int,
        snapshot: ServiceSnapshot,
        probers: Optional[dict[int, Prober]] = None,
    ) -> list[int]:
        """Replay a shard snapshot into ``shard_id``'s worker."""
        restored = self.shard(shard_id).restore(snapshot, probers)
        for session_id in restored:
            self._next_id = max(self._next_id, session_id + 1)
        return restored

    # ------------------------------------------------------------------
    # Spaces
    # ------------------------------------------------------------------

    @property
    def space(self) -> Space:
        return self._mirror

    def get_space(self, name: str = "default") -> Space:
        try:
            return self._mirrors[name]
        except KeyError:
            raise ValueError(
                f"no mirror for space {name!r}; build the cluster with "
                "extra_spaces={...}"
            ) from None

    def space_names(self) -> list[str]:
        return sorted(self._mirrors)

    def worker_epochs(self, name: str = "default") -> list[object]:
        """Each worker's published epoch for the named shared space."""
        return [shard.space_epoch(name) for shard in self.shards]

    # ------------------------------------------------------------------
    # The wire face
    # ------------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        return dispatch_request(self, request)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open_session(
        self,
        members: Sequence[Union[MemberState, object]],
        policy: Policy,
        prober: Optional[Prober] = None,
        space: Union[None, str, Space] = None,
        session_id: Optional[int] = None,
    ) -> SessionHandle:
        _require_space_ref(space)
        gid = self._next_id if session_id is None else session_id
        owner_id = self._ring.shard_for(gid)
        # Topology-aware duplicate detection: the ring's current owner
        # rejects duplicates server-side, but a reshard (or a failover
        # restore) may have parked the original on another worker —
        # check them too before registering anything.
        if session_id is not None:
            for shard_id in sorted(self._shards):
                if shard_id == owner_id:
                    continue
                if gid in self._shards[shard_id].session_ids():
                    raise ValueError(f"session id {gid} is already in use")
        handle = self._shards[owner_id].open_session(
            members, policy, prober=prober, space=space, session_id=gid
        )
        self._next_id = max(self._next_id, gid + 1)
        return handle

    def close_session(self, session_id: int) -> None:
        self._shard(session_id).close_session(session_id)

    def session_ids(self) -> list[int]:
        return sorted(
            session_id
            for shard in self._shards.values()
            for session_id in shard.session_ids()
        )

    def session_metrics(self, session_id: int) -> SimulationMetrics:
        return self._shard(session_id).session_metrics(session_id)

    def update_policy(self, session_id: int, policy: Policy) -> None:
        self._shard(session_id).update_policy(session_id, policy)

    # ------------------------------------------------------------------
    # The event protocol
    # ------------------------------------------------------------------

    def report(
        self,
        session_id: int,
        member_id: int,
        point,
        heading: Optional[float] = None,
        theta: Optional[float] = None,
        probes: Optional[Sequence[tuple[int, MemberState]]] = None,
    ) -> Optional[Notification]:
        return self._shard(session_id).report(
            session_id, member_id, point, heading, theta, probes=probes
        )

    def update_locations(
        self, session_id: int, members: Sequence[Union[MemberState, object]]
    ) -> Notification:
        return self._shard(session_id).update_locations(session_id, members)

    def report_many(
        self, events: Sequence[ReportEvent]
    ) -> list[Optional[Notification]]:
        """A fleet wave across the workers, single-service-equivalent.

        Probes are gathered client-side first (so validation sees the
        exact events that will execute), every involved worker then
        validates its sub-batch without mutating anything, and only
        when all accept does any worker serve — the cross-shard
        all-or-nothing contract of :class:`~repro.cluster.MPNCluster`.
        Results land back in request order.
        """
        split: dict[int, list[tuple[int, ReportEvent]]] = {}
        for index, event in enumerate(events):
            shard_index = self._ring.shard_for(event.session_id)
            split.setdefault(shard_index, []).append((index, event))
        ordered = sorted(split.items())
        prepared: dict[int, list[tuple[int, ReportEvent]]] = {}
        for shard_index, shard_events in ordered:
            shard = self._shards[shard_index]
            prepared[shard_index] = [
                (event_index, with_probes)
                for (event_index, _), with_probes in zip(
                    shard_events,
                    shard.attach_probes([e for _, e in shard_events]),
                )
            ]
        for shard_index, shard_events in ordered:
            self._shards[shard_index].validate_events(
                [event for _, event in prepared[shard_index]]
            )
        out: list[Optional[Notification]] = [None] * len(events)
        for shard_index, _ in ordered:
            shard = self._shards[shard_index]
            shard_events = prepared[shard_index]
            notifications = shard.report_many(
                [event for _, event in shard_events]
            )
            for (event_index, _), notification in zip(
                shard_events, notifications
            ):
                out[event_index] = notification
        return out

    # ------------------------------------------------------------------
    # Dynamic POI updates
    # ------------------------------------------------------------------

    def update_pois(
        self,
        adds: Sequence[tuple[object, object]] = (),
        removes: Sequence[tuple[object, object]] = (),
        space: Union[None, str, Space] = None,
    ) -> list[Notification]:
        """One churn batch: validate on the mirror, fan to every worker.

        The front door's mirror replica absorbs the batch first — its
        delta layer validates all-or-nothing, so a bad removal raises
        here and no worker ever observes a partial batch (workers are
        replicas of the mirror, so what the mirror accepts they
        accept).  Each worker then applies the same batch to its own
        index — bumping its shared space's epoch exactly once — and
        re-notifies its own invalidated sessions.  Accepted batches
        also land in the churn log that catches up late-spawned
        workers (:meth:`add_shard`).  Merged notifications come back
        in ascending session order.
        """
        name = _require_space_ref(space)
        mirror = self.get_space(name or "default")
        mirror.bulk_update(adds, removes)
        self._churn_log.append((tuple(adds), tuple(removes), name))
        notifications: list[Notification] = []
        for shard in self.shards:
            notifications.extend(
                shard.update_pois(adds=adds, removes=removes, space=space)
            )
        notifications.sort(key=lambda n: n.session_id)
        return notifications

    def add_poi(self, p, payload=None, space=None) -> list[Notification]:
        return self.update_pois(adds=[(p, payload)], space=space)

    def remove_poi(self, p, payload=None, space=None) -> list[Notification]:
        return self.update_pois(removes=[(p, payload)], space=space)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> SimulationMetrics:
        """Cluster-wide counters: every worker's aggregate merged,
        retired workers' aggregates included."""
        merged = SimulationMetrics()
        merged.merge(self._retired)
        for shard in self._shards.values():
            merged.merge(shard.metrics)
        return merged

    def shard_metrics(self) -> list[SimulationMetrics]:
        return [shard.metrics for shard in self.shards]

    def shard_loads(self) -> list[ShardLoad]:
        """Per-worker load since the previous read (see
        :mod:`repro.cluster.load`)."""
        return collect_shard_loads(self._shards, self._load_baselines)

    def hot_shards(self, threshold: float = 2.0) -> list[int]:
        """Worker shard ids serving > ``threshold`` × the mean load
        since the last :meth:`shard_loads` read."""
        return hot_shards(self.shard_loads(), threshold)

    def server_stats(self) -> list[dict]:
        """Each worker's transport-level stats, in shard-id order."""
        return [shard.server_stats() for shard in self.shards]
