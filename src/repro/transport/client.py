"""Wire clients: the blocking driver-side backend and an async caller.

:class:`RemoteBackend` is the headline piece — a drop-in
:class:`~repro.service.api.ServiceBackend` whose methods speak TCP
instead of calling into a local service.  It implements the same
convenience surface :func:`repro.simulation.run_service` drives
(``open_session`` / ``report`` / ``report_many`` / ``update_pois`` /
``session_metrics`` / ``metrics`` / ``get_space``), so an existing
fleet driver runs unchanged against a remote server::

    backend = RemoteBackend(host, port, space=local_mirror_space)
    run_service(groups, policies, backend=backend, check_every=5)

Three in-process conveniences need a client-side stand-in:

* **Probers.**  A prober callable cannot cross the wire; the backend
  keeps it locally and, at report time, gathers the other members'
  states and ships them as the request's ``probes`` (schema v2).  The
  server applies them exactly like prober answers and charges the same
  probe traffic, so metrics stay bit-identical.
* **Live regions.**  Responses carry region geometry by value; the
  backend decodes it (:func:`repro.service.regions.decode_region`)
  into live objects, so ``notification.regions[i].contains_point``
  works client-side — the paper's actual client role.
* **Spaces.**  A live space cannot cross the wire, but the driver's
  exactness checks (and network-region decoding) need one.  The
  backend holds local *mirror* spaces — built the same way the
  server's were — and applies every ``update_pois`` batch to the
  mirror too, so ``backend.get_space(...)`` always answers with the
  server's current POI set.

Server-side failures arrive as
:class:`~repro.service.api.ErrorResponse` envelopes and are re-raised
as their original exception types
(:func:`~repro.service.api.raise_error_response`), so
``UnknownSessionError`` et al. behave exactly as in-process.

:class:`AsyncWireClient` is the thin coroutine-side counterpart used
by concurrent benchmark drivers; it shares the frame protocol but none
of the backend conveniences.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.service.api import (
    CloseSessionRequest,
    ErrorResponse,
    NotificationPayload,
    OpenSessionRequest,
    ReportManyRequest,
    ReportRequest,
    Request,
    Response,
    ServiceSnapshot,
    SessionSnapshot,
    UpdateLocationsRequest,
    UpdatePoisRequest,
    UpdatePolicyRequest,
    raise_error_response,
    response_from_dict,
)
from repro.service.messages import (
    MemberState,
    Notification,
    ReportEvent,
    SessionHandle,
)
from repro.service.session import Prober
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.policies import Policy
from repro.space import Space
from repro.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    ConnectionClosed,
    SyncFrameStream,
    connect_stream,
    read_frame,
    write_frame,
)


class ControlError(RuntimeError):
    """A control call failed without a typed error envelope."""


def _raise_if_error(response: Response) -> Response:
    if isinstance(response, ErrorResponse):
        raise_error_response(response)
    return response


class WireClient:
    """One blocking connection speaking the frame protocol.

    Sequential request/response (ids are checked, not multiplexed):
    the simplest correct client for straight-line fleet drivers.  Use
    :class:`AsyncWireClient` to pipeline.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self._stream: SyncFrameStream = connect_stream(
            host, port, max_frame_bytes, timeout
        )
        self._ids = itertools.count()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the connection; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self._stream.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, frame: dict) -> dict:
        self._stream.send(frame)
        while True:
            reply = self._stream.recv()
            if not isinstance(reply, dict):
                raise ControlError(f"malformed server frame: {reply!r}")
            if reply.get("id") is None and "response" in reply:
                # A connection-level error frame (oversized/junk input
                # attributed to no request): surface it on whoever is
                # waiting.
                raise_error_response(ErrorResponse.from_dict(reply["response"]))
            if reply.get("id") != frame["id"]:
                raise ControlError(
                    f"out-of-order reply {reply.get('id')!r} "
                    f"(expected {frame['id']})"
                )
            return reply

    def dispatch(self, request: Request) -> Response:
        """One envelope over the wire; returns the response envelope
        (which may be an :class:`ErrorResponse` — use :meth:`call` to
        raise instead)."""
        frame = {"id": next(self._ids), "request": request.to_dict()}
        reply = self._roundtrip(frame)
        if "response" not in reply:
            raise ControlError(f"reply carries no response: {reply!r}")
        return response_from_dict(reply["response"])

    def call(self, request: Request) -> Response:
        """Like :meth:`dispatch` but re-raises error envelopes."""
        return _raise_if_error(self.dispatch(request))

    def control(self, op: str, **params: object) -> object:
        frame = {"id": next(self._ids), "control": {"op": op, **params}}
        reply = self._roundtrip(frame)
        if "response" in reply:  # control failures come back as errors
            raise_error_response(ErrorResponse.from_dict(reply["response"]))
        if "result" not in reply:
            raise ControlError(f"reply carries no result: {reply!r}")
        return reply["result"]


@dataclass
class _RemoteSession:
    """Client-side per-session state a wire backend must keep."""

    size: int
    prober: Optional[Prober]
    space: Optional[Space]  # local mirror, for network-region decoding


class RemoteBackend:
    """A ``ServiceBackend`` whose backend lives across a TCP connection.

    See the module docstring.  ``space`` is the local mirror of the
    server's default space (required for ``run_service`` exactness
    checks and for decoding network regions; optional otherwise);
    ``spaces`` maps registered names to their mirrors.  Mirrors receive
    every ``update_pois`` batch this backend sends, so they track the
    server's POI set exactly.
    """

    batched = True  # report_many crosses the wire as one envelope

    def __init__(
        self,
        host: str,
        port: int,
        *,
        space: Optional[Space] = None,
        spaces: Optional[dict[str, Space]] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout: Optional[float] = None,
        mirror_updates: bool = True,
    ):
        self.client = WireClient(
            host, port, max_frame_bytes=max_frame_bytes, timeout=timeout
        )
        self._spaces = dict(spaces or {})
        if space is not None:
            self._spaces.setdefault("default", space)
        self._space = self._spaces.get("default")
        # A ProcessCluster front door shares one mirror set across many
        # shard backends and applies each churn batch to it exactly
        # once itself; mirror_updates=False opts this backend out.
        self._mirror_updates = mirror_updates
        self._sessions: dict[int, _RemoteSession] = {}

    # ------------------------------------------------------------------
    # Lifecycle + plumbing
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "RemoteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def ping(self) -> bool:
        return bool(self.client.control("ping").get("ok"))

    def server_stats(self) -> dict:
        return dict(self.client.control("stats"))

    def oracle_stats(self) -> dict:
        """Remote distance-oracle counters, per road-network space.

        The server ships :meth:`MPNService.oracle_stats` inside the
        ``stats`` control reply; backends with no road-network spaces
        report ``{}``.  Being a :class:`ServiceBackend` method here
        too, a :class:`RemoteBackend` fronting a remote server chains
        transparently (e.g. a cluster of wire workers).
        """
        return dict(self.server_stats().get("oracle", {}))

    def shutdown_server(self) -> None:
        """Ask the server to drain and stop (the graceful path)."""
        self.client.control("shutdown")

    def dispatch(self, request: Request) -> Response:
        return self.client.dispatch(request)

    # ------------------------------------------------------------------
    # Local mirror spaces
    # ------------------------------------------------------------------

    @property
    def space(self) -> Space:
        if self._space is None:
            raise ValueError(
                "this RemoteBackend was built without a local mirror of the "
                "server's default space; pass space=... to the constructor"
            )
        return self._space

    def get_space(self, name: str = "default") -> Space:
        if name == "default":
            return self.space
        try:
            return self._spaces[name]
        except KeyError:
            raise ValueError(
                f"no local mirror for space {name!r}; pass spaces={{...}} "
                "to the constructor"
            ) from None

    def space_names(self) -> list[str]:
        return list(self.client.control("space_names"))

    def space_epoch(self, name: str = "default") -> object:
        """The *server-side* epoch of the named (shared) space."""
        return self.client.control("space_epoch", space=name)["epoch"]

    def _mirror_for_ref(self, space: Union[None, str, Space]) -> Optional[Space]:
        if isinstance(space, Space):
            raise ValueError(
                "a live space cannot cross the wire; register it on the "
                "server and reference it by name"
            )
        if space is None:
            return self._spaces.get("default")
        return self._spaces.get(space)

    # ------------------------------------------------------------------
    # Decoding responses into live objects
    # ------------------------------------------------------------------

    def _notification(
        self, payload: Optional[NotificationPayload], session_id: int
    ) -> Optional[Notification]:
        if payload is None:
            return None
        session = self._sessions.get(session_id)
        space = session.space if session is not None else self._space
        return Notification(
            session_id=payload.session_id,
            po=payload.po,
            regions=payload.live_regions(space=space),
            region_values=payload.region_values,
            cpu_seconds=payload.cpu_seconds,
            stats=payload.stats,
            cause=payload.cause,
        )

    def _gather_probes(
        self, session_id: int, exclude: int
    ) -> Optional[tuple[tuple[int, MemberState], ...]]:
        session = self._sessions.get(session_id)
        if session is None or session.prober is None:
            return None
        return tuple(
            (i, session.prober(i))
            for i in range(session.size)
            if i != exclude
        )

    # ------------------------------------------------------------------
    # The convenience surface (what run_service drives)
    # ------------------------------------------------------------------

    def open_session(
        self,
        members: Sequence[Union[MemberState, object]],
        policy: Policy,
        prober: Optional[Prober] = None,
        space: Union[None, str, Space] = None,
        session_id: Optional[int] = None,
    ) -> SessionHandle:
        mirror = self._mirror_for_ref(space)
        states = [
            m if isinstance(m, MemberState) else MemberState(point=m)
            for m in members
        ]
        response = self.client.call(
            OpenSessionRequest(
                members=tuple(states),
                policy=policy,
                space=space,
                session_id=session_id,
            )
        )
        self._sessions[response.session_id] = _RemoteSession(
            size=response.size, prober=prober, space=mirror
        )
        return SessionHandle(
            session_id=response.session_id,
            size=response.size,
            policy=response.policy,
            strategy_name=response.strategy_name,
            notification=self._notification(
                response.notification, response.session_id
            ),
        )

    def close_session(self, session_id: int) -> None:
        self.client.call(CloseSessionRequest(session_id=session_id))
        self._sessions.pop(session_id, None)

    def session_ids(self) -> list[int]:
        return [int(s) for s in self.client.control("session_ids")]

    def session_metrics(self, session_id: int) -> SimulationMetrics:
        data = self.client.control("session_metrics", session_id=session_id)
        return SimulationMetrics(**data)

    @property
    def metrics(self) -> SimulationMetrics:
        return SimulationMetrics(**self.client.control("metrics"))

    def update_policy(self, session_id: int, policy: Policy) -> None:
        self.client.call(
            UpdatePolicyRequest(session_id=session_id, policy=policy)
        )

    # ------------------------------------------------------------------
    # Session migration and shard snapshots (elastic operations)
    # ------------------------------------------------------------------

    def export_session(self, session_id: int) -> SessionSnapshot:
        """The server-side session state as a snapshot envelope (a read)."""
        return SessionSnapshot.from_dict(
            self.client.control("export_session", session_id=session_id)
        )

    def import_session(
        self, snapshot: SessionSnapshot, prober: Optional[Prober] = None
    ) -> None:
        """Install a migrated session on this backend's server.

        The server resumes the session verbatim (no recomputation, no
        metric charges); this side registers the client-side stand-ins
        — the prober and the mirror space named by the snapshot — so
        probe gathering and region decoding keep working here.
        """
        self.client.control("import_session", snapshot=snapshot.to_dict())
        self._sessions[snapshot.session_id] = _RemoteSession(
            size=len(snapshot.members),
            prober=prober,
            space=self._mirror_for_ref(snapshot.space),
        )

    def handoff_session(
        self, session_id: int, target: "RemoteBackend"
    ) -> SessionSnapshot:
        """Migrate one session from this server to ``target``'s.

        Export → import → close, with the client-side state (prober,
        mirror) moving along.  The session is never absent: this server
        keeps serving it until the import has landed.
        """
        snapshot = self.export_session(session_id)
        state = self._sessions.get(session_id)
        target.import_session(
            snapshot, prober=None if state is None else state.prober
        )
        self.close_session(session_id)
        return snapshot

    def snapshot(self) -> ServiceSnapshot:
        """The whole remote shard as a failover envelope (a read)."""
        return ServiceSnapshot.from_dict(self.client.control("snapshot"))

    def restore(
        self,
        snapshot: ServiceSnapshot,
        probers: Optional[dict[int, Prober]] = None,
    ) -> list[int]:
        """Replay a shard snapshot into this backend's server."""
        result = self.client.control("restore", snapshot=snapshot.to_dict())
        probers = probers or {}
        for entry in snapshot.sessions:
            self._sessions[entry.session_id] = _RemoteSession(
                size=len(entry.members),
                prober=probers.get(entry.session_id),
                space=self._mirror_for_ref(entry.space),
            )
        return [int(session_id) for session_id in result["session_ids"]]

    def report(
        self,
        session_id: int,
        member_id: int,
        point,
        heading: Optional[float] = None,
        theta: Optional[float] = None,
        probes: Optional[Sequence[tuple[int, MemberState]]] = None,
    ) -> Optional[Notification]:
        if probes is None:
            probes = self._gather_probes(session_id, member_id)
        response = self.client.call(
            ReportRequest(
                session_id=session_id,
                member_id=member_id,
                state=MemberState(point=point, heading=heading, theta=theta),
                probes=None if probes is None else tuple(probes),
            )
        )
        return self._notification(response.notification, session_id)

    def attach_probes(
        self, events: Sequence[ReportEvent]
    ) -> list[ReportEvent]:
        """Fill each event's ``probes`` from its session's local prober.

        Events that already carry probes (or whose session has no
        prober) pass through unchanged.
        """
        return [
            event
            if event.probes is not None
            else dataclasses.replace(
                event,
                probes=self._gather_probes(
                    event.session_id, event.member_id
                ),
            )
            for event in events
        ]

    def validate_events(self, events: Sequence[ReportEvent]) -> None:
        """Server-side all-or-nothing validation; mutates nothing."""
        self.client.control(
            "validate_events",
            request=ReportManyRequest(events=tuple(events)).to_dict(),
        )

    def report_many(
        self, events: Sequence[ReportEvent]
    ) -> list[Optional[Notification]]:
        events = self.attach_probes(events)
        response = self.client.call(ReportManyRequest(events=tuple(events)))
        return [
            self._notification(payload, event.session_id)
            for payload, event in zip(response.notifications, events)
        ]

    def update_locations(
        self, session_id: int, members: Sequence[Union[MemberState, object]]
    ) -> Notification:
        states = [
            m if isinstance(m, MemberState) else MemberState(point=m)
            for m in members
        ]
        response = self.client.call(
            UpdateLocationsRequest(
                session_id=session_id, members=tuple(states)
            )
        )
        return self._notification(response.notification, session_id)

    def update_pois(
        self,
        adds: Sequence[tuple[object, object]] = (),
        removes: Sequence[tuple[object, object]] = (),
        space: Union[None, str, Space] = None,
    ) -> list[Notification]:
        mirror = self._mirror_for_ref(space)
        response = self.client.call(
            UpdatePoisRequest(
                adds=tuple(adds), removes=tuple(removes), space=space
            )
        )
        # The server accepted the whole batch; keep the local mirror in
        # lock-step so exactness checks measure the same POI set.
        if mirror is not None and self._mirror_updates:
            mirror.bulk_update(adds, removes)
        return [
            self._notification(payload, payload.session_id)
            for payload in response.notifications
        ]

    def add_poi(self, p, payload=None, space=None) -> list[Notification]:
        return self.update_pois(adds=[(p, payload)], space=space)

    def remove_poi(self, p, payload=None, space=None) -> list[Notification]:
        return self.update_pois(removes=[(p, payload)], space=space)


class AsyncWireClient:
    """The coroutine-side caller: pipelined requests over one connection.

    Unlike :class:`WireClient` this one multiplexes — many coroutines
    may await :meth:`dispatch` concurrently; replies are matched by
    frame id.  Used by the concurrency benchmarks to drive the server's
    backpressure brake from a single process.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count()
        self._pending: dict[int, asyncio.Future] = {}
        self._pump: Optional[asyncio.Task] = None

    async def connect(self, host: str, port: int) -> "AsyncWireClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._pump = asyncio.ensure_future(self._pump_replies())
        return self

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def _pump_replies(self) -> None:
        try:
            while True:
                reply = await read_frame(self._reader, self.max_frame_bytes)
                if not isinstance(reply, dict):
                    continue
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionClosed, ConnectionError, OSError, asyncio.CancelledError) as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionClosed(f"connection lost: {exc!r}")
                    )
            self._pending.clear()

    async def _roundtrip(self, frame: dict) -> dict:
        future = asyncio.get_running_loop().create_future()
        self._pending[frame["id"]] = future
        await write_frame(self._writer, frame, self.max_frame_bytes)
        return await future

    async def dispatch(self, request: Request) -> Response:
        frame = {"id": next(self._ids), "request": request.to_dict()}
        reply = await self._roundtrip(frame)
        return response_from_dict(reply["response"])

    async def call(self, request: Request) -> Response:
        return _raise_if_error(await self.dispatch(request))

    async def control(self, op: str, **params: object) -> object:
        frame = {"id": next(self._ids), "control": {"op": op, **params}}
        reply = await self._roundtrip(frame)
        if "response" in reply:
            raise_error_response(ErrorResponse.from_dict(reply["response"]))
        return reply["result"]
