"""The asyncio wire server: any ``ServiceBackend`` behind a TCP port.

:class:`WireServer` serves the :mod:`repro.service.api` envelopes over
the length-prefixed JSON framing of :mod:`repro.transport.framing`.
It is backend-agnostic by construction — anything with
``dispatch(request) -> response`` works, so a single
:class:`repro.service.MPNService`, an in-process
:class:`repro.cluster.MPNCluster`, or one shard of a
multi-process :class:`repro.transport.ProcessCluster` all sit behind
the identical wire.

Concurrency model
-----------------

The event loop only moves bytes; every ``dispatch`` runs on a
**single-worker** thread pool.  That serializes backend access (the
serving stack is synchronous, deliberately — exactness proofs care
about event order) while the loop stays free to read, write and time
out other connections.  Requests from *one* connection are answered in
arrival order as a consequence; requests from different connections
interleave at dispatch granularity, exactly like threads contending
for one service lock.

Degradation knobs
-----------------

* ``max_inflight`` — per-connection bound on decoded-but-unanswered
  requests.  When a client pipelines past it the server simply stops
  reading that connection until answers drain, which surfaces to the
  peer as TCP backpressure; ``stats.backpressure_waits`` counts how
  often that brake engaged.
* ``max_frame_bytes`` — per-frame byte limit, both directions.  An
  oversized *incoming* frame is unrecoverable (the bytes were never
  read), so the connection gets one ``frame_too_large`` error frame
  with ``"id": null`` and closes; an oversized *outgoing* response is
  the server's own fault and is reported as an ``internal`` error on
  the request's id, connection kept.
* ``request_timeout`` — seconds before an in-flight dispatch is
  answered with a ``timeout`` :class:`~repro.service.api.ErrorResponse`.
  The synchronous backend work itself is not cancellable — the worker
  thread finishes (its result is discarded) and later requests queue
  behind it; the timeout bounds the *caller's* wait, not the server's
  work.

Failures a request can cause — bad envelopes, unknown sessions, bad
removals, strategy exceptions — come back as
:class:`~repro.service.api.ErrorResponse` envelopes on that request's
id; the connection (and every sibling session) keeps working.  Frames
whose body is not valid JSON are answered with ``"id": null`` and the
connection keeps reading (framing stayed intact).

Shutdown (:meth:`WireServer.stop`) drains: the listener closes first,
every accepted connection finishes its in-flight requests, then the
connections close.  The ``shutdown`` control op triggers the same
path remotely after acknowledging.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.service.api import (
    ErrorResponse,
    ReportManyRequest,
    ServiceSnapshot,
    SessionSnapshot,
    error_response_for,
    request_from_dict,
)
from repro.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameDecodeError,
    FrameTooLargeError,
    read_frame,
    write_frame,
)

DEFAULT_MAX_INFLIGHT = 32


class _Connection:
    """Book-keeping for one accepted client connection."""

    def __init__(self, writer: asyncio.StreamWriter, max_inflight: int):
        self.writer = writer
        self.write_lock = asyncio.Lock()  # frames must not interleave
        self.inflight = asyncio.Semaphore(max_inflight)
        self.tasks: set[asyncio.Task] = set()

    async def send(self, frame: dict, max_bytes: int) -> None:
        async with self.write_lock:
            await write_frame(self.writer, frame, max_bytes)


class WireServer:
    """Serve one ``ServiceBackend`` over TCP.  See the module docstring."""

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: Optional[float] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.backend = backend
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.backpressure_waits = 0
        self.requests_served = 0
        self.errors_sent = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set[_Connection] = set()
        self._stopping = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — read after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("server is already started")
        # One worker thread: backend access is serialized, the loop is
        # not (see the module docstring's concurrency model).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="wire-dispatch"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self.address[1]
        return self.address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or the ``shutdown`` control op)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            conn.writer.close()
            with contextlib.suppress(Exception):
                await conn.writer.wait_closed()
        self._connections.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer, self.max_inflight)
        self._connections.add(conn)
        try:
            await self._read_loop(reader, conn)
        finally:
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            self._connections.discard(conn)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        while not self._stopping:
            try:
                frame = await read_frame(reader, self.max_frame_bytes)
            except ConnectionClosed:
                return
            except FrameTooLargeError as exc:
                # The oversized bytes were never read; no way to resync.
                await self._send_error(conn, None, exc, code="frame_too_large")
                return
            except FrameDecodeError as exc:
                # Framing intact: report and keep reading.
                await self._send_error(conn, None, exc, code="malformed_envelope")
                continue
            except (ConnectionError, OSError):
                return
            # Backpressure: stop reading this connection while it has
            # max_inflight unanswered requests.
            if conn.inflight.locked():
                self.backpressure_waits += 1
            await conn.inflight.acquire()
            task = asyncio.ensure_future(self._serve_frame(conn, frame))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)

    async def _send_error(
        self,
        conn: _Connection,
        frame_id: object,
        exc: BaseException,
        code: Optional[str] = None,
    ) -> None:
        error = error_response_for(exc)
        if code is not None:
            error = ErrorResponse(
                code=code, message=error.message, details=error.details
            )
        self.errors_sent += 1
        with contextlib.suppress(ConnectionError, OSError):
            await conn.send(
                {"id": frame_id, "response": error.to_dict()},
                self.max_frame_bytes,
            )

    async def _serve_frame(self, conn: _Connection, frame: object) -> None:
        try:
            frame_id: object = None
            if not isinstance(frame, dict):
                await self._send_error(
                    conn,
                    None,
                    ValueError(f"frame must be a JSON object, got {frame!r}"),
                    code="malformed_envelope",
                )
                return
            frame_id = frame.get("id")
            if not isinstance(frame_id, (int, type(None))):
                frame_id = None
            try:
                if "request" in frame:
                    payload = await self._serve_request(frame["request"])
                    reply = {"id": frame_id, "response": payload}
                elif "control" in frame:
                    payload = await self._serve_control(frame["control"])
                    reply = {"id": frame_id, "result": payload}
                else:
                    raise ValueError(
                        "frame carries neither 'request' nor 'control'"
                    )
            except BaseException as exc:  # noqa: BLE001 - becomes an envelope
                await self._send_error(conn, frame_id, exc)
                return
            if isinstance(payload, dict) and payload.get("op") == "error":
                self.errors_sent += 1
            self.requests_served += 1
            try:
                await conn.send(reply, self.max_frame_bytes)
            except FrameTooLargeError as exc:
                await self._send_error(conn, frame_id, exc, code="internal")
            except (ConnectionError, OSError):
                pass  # client went away; nothing left to tell it
        finally:
            conn.inflight.release()

    # ------------------------------------------------------------------
    # Request + control dispatch
    # ------------------------------------------------------------------

    async def _dispatch_blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, fn, *args)
        if self.request_timeout is None:
            return await future
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout
            )
        except asyncio.TimeoutError:
            # The worker thread cannot be interrupted; the result is
            # discarded when it eventually lands.
            raise TimeoutError(
                f"request exceeded the {self.request_timeout}s server timeout"
            ) from None

    async def _serve_request(self, envelope: object) -> dict:
        """One request envelope -> one response envelope (dict form)."""
        try:
            request = request_from_dict(envelope)
        except Exception as exc:
            return error_response_for(exc).to_dict()
        try:
            response = await self._dispatch_blocking(
                self.backend.dispatch, request
            )
            return response.to_dict()
        except TimeoutError as exc:
            return error_response_for(exc).to_dict()
        except Exception as exc:
            return error_response_for(exc).to_dict()

    async def _serve_control(self, control: object) -> object:
        """The out-of-band surface: metrics, liveness, shutdown.

        Control operations mirror the backend accessors a fleet driver
        reads around the envelope API (``metrics``,
        ``session_metrics``, …).  They run on the same single dispatch
        worker as requests, so a control read never observes a
        half-applied wave.
        """
        if not isinstance(control, dict) or "op" not in control:
            raise ValueError(f"malformed control frame: {control!r}")
        op = control["op"]
        if op == "ping":
            return {"ok": True}
        if op == "shutdown":
            # Acknowledge first, then drain in the background; the
            # in-flight bookkeeping keeps this reply ordered before the
            # connection closes.
            asyncio.ensure_future(self.stop())
            return {"ok": True}
        if op == "stats":
            stats = {
                "sessions": len(self.backend.session_ids()),
                "connections": len(self._connections),
                "max_inflight": self.max_inflight,
                "backpressure_waits": self.backpressure_waits,
                "requests_served": self.requests_served,
                "errors_sent": self.errors_sent,
            }
            oracle_stats = getattr(self.backend, "oracle_stats", None)
            if oracle_stats is not None:
                # Road-network backends: the distance oracle's
                # row-cache / landmark counters, per space name.
                stats["oracle"] = await self._dispatch_blocking(oracle_stats)
            return stats
        if op == "metrics":
            metrics = await self._dispatch_blocking(
                lambda: self.backend.metrics
            )
            return dataclasses.asdict(metrics)
        if op == "session_metrics":
            metrics = await self._dispatch_blocking(
                self.backend.session_metrics, int(control["session_id"])
            )
            return dataclasses.asdict(metrics)
        if op == "session_ids":
            return await self._dispatch_blocking(self.backend.session_ids)
        if op == "space_names":
            return await self._dispatch_blocking(self.backend.space_names)
        if op == "space_epoch":
            def epoch():
                space = self.backend.get_space(control.get("space", "default"))
                return getattr(space, "epoch", None)

            return {"epoch": await self._dispatch_blocking(epoch)}
        if op == "export_session":
            # Session migration, source side: the full session state as
            # a schema-v2 snapshot envelope.  A read — the session
            # keeps serving here until the front door closes it.
            snapshot = await self._dispatch_blocking(
                self.backend.export_session, int(control["session_id"])
            )
            return snapshot.to_dict()
        if op == "import_session":
            # Session migration, target side: install the snapshot
            # verbatim — no recomputation, no metric charges — so a
            # migrated fleet's notification stream cannot tell.
            snapshot = SessionSnapshot.from_dict(control["snapshot"])
            await self._dispatch_blocking(
                self.backend.import_session, snapshot
            )
            return {"ok": True, "session_id": snapshot.session_id}
        if op == "snapshot":
            snapshot = await self._dispatch_blocking(self.backend.snapshot)
            return snapshot.to_dict()
        if op == "restore":
            snapshot = ServiceSnapshot.from_dict(control["snapshot"])
            restored = await self._dispatch_blocking(
                self.backend.restore, snapshot
            )
            return {"ok": True, "session_ids": list(restored)}
        if op == "validate_events":
            # All-or-nothing wave validation for a multi-worker front
            # door: decode the report_many envelope, validate, mutate
            # nothing (see MPNService.validate_events).
            request = ReportManyRequest.from_dict(control["request"])
            await self._dispatch_blocking(
                self.backend.validate_events, list(request.events)
            )
            return {"ok": True}
        raise ValueError(f"unknown control op {op!r}")


class ThreadedWireServer:
    """A :class:`WireServer` on a background thread — the in-process
    deployment used by tests, benchmarks and examples.

    Runs its own event loop on a daemon thread, starts the server,
    exposes the bound address, and joins cleanly::

        with ThreadedWireServer(MPNService(space)) as server:
            backend = RemoteBackend(*server.address)
            ...

    ``stop()`` (or leaving the ``with`` block) runs the same graceful
    drain as :meth:`WireServer.stop`.
    """

    def __init__(self, backend, **kwargs):
        self.server = WireServer(backend, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[tuple[str, int]] = None

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread is already running")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self.address = self._loop.run_until_complete(
                    self.server.start()
                )
            except BaseException as exc:  # pragma: no cover - bind failures
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                self._loop.run_until_complete(self.server.serve_forever())
            finally:
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens()
                )
                self._loop.close()

        self._thread = threading.Thread(
            target=run, name="wire-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:  # pragma: no cover - bind failures
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        # The ``shutdown`` control op stops the server from inside the
        # loop; the serving thread then closes the loop on its way out.
        # Racing that, ``run_coroutine_threadsafe`` can land on a
        # closed loop — the drain already happened, so just join.
        coro = self.server.stop()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError:
            coro.close()
            future = None
        if future is not None:
            try:
                future.result(timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
            except RuntimeError:
                # Loop closed between scheduling and completion: the
                # serve thread finished its own stop() concurrently.
                pass
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ThreadedWireServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
