"""Length-prefixed JSON framing — the bottom of the wire stack.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both directions speak the same framing; what the
JSON *means* is the next layer up (:mod:`repro.transport.server` /
:mod:`repro.transport.client`):

* client -> server: ``{"id": n, "request": <request envelope>}`` or
  ``{"id": n, "control": {"op": ..., ...}}``;
* server -> client: ``{"id": n, "response": <response envelope>}``
  (``op == "error"`` envelopes included) or ``{"id": n, "result":
  <JSON>}`` for control answers.  ``"id": null`` marks a
  protocol-level error no request id can be attributed to (a frame
  whose body was not valid JSON, or one over the size limit).

Failure taxonomy — decided here, acted on above:

* a frame whose *length* exceeds the limit is unrecoverable: the
  receiver cannot skip bytes it refused to read, so the connection
  must close (:class:`FrameTooLargeError`);
* a frame whose *body* is not valid JSON is recoverable: the framing
  itself stayed intact, so the receiver reports the error and keeps
  reading (:class:`FrameDecodeError`);
* a partial frame (peer died mid-write) is end-of-stream
  (:class:`ConnectionClosed`).

The async side serves :class:`repro.transport.server.WireServer`; the
sync side (:class:`SyncFrameStream`) is what the blocking client uses
— a fleet driver is straight-line code, and a blocking socket keeps it
that way.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

HEADER = struct.Struct(">I")

#: Default per-frame byte limit (either direction).  Generous — a
#: 500-session churn response fits with room to spare — but finite, so
#: one malicious or buggy peer cannot balloon server memory.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


class TransportError(ConnectionError):
    """Base class for wire-level failures."""


class ConnectionClosed(TransportError):
    """The peer closed (or died) mid-conversation."""


class FrameTooLargeError(TransportError):
    """A frame exceeded the size limit; the connection cannot recover."""

    def __init__(self, size: int, limit: int):
        super().__init__(f"frame of {size} bytes exceeds the {limit}-byte limit")
        self.size = size
        self.limit = limit


class FrameDecodeError(TransportError):
    """A complete frame's body was not valid JSON (framing stays intact)."""


def encode_frame(obj: object, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """``obj`` as one wire frame (header + compact JSON body)."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameTooLargeError(len(body), max_bytes)
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameDecodeError(f"frame body is not valid JSON: {exc}") from exc


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> object:
    """Read one frame; raises :class:`ConnectionClosed` at end-of-stream."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosed("peer closed the connection") from exc
    (size,) = HEADER.unpack(header)
    if size > max_bytes:
        raise FrameTooLargeError(size, max_bytes)
    try:
        body = await reader.readexactly(size)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosed("peer died mid-frame") from exc
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: object,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    writer.write(encode_frame(obj, max_bytes))
    await writer.drain()


class SyncFrameStream:
    """Blocking frame I/O over a connected socket (the client side)."""

    def __init__(
        self,
        sock: socket.socket,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes

    def send(self, obj: object) -> None:
        self._sock.sendall(encode_frame(obj, self.max_frame_bytes))

    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionClosed("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> object:
        header = self._read_exactly(HEADER.size)
        (size,) = HEADER.unpack(header)
        if size > self.max_frame_bytes:
            raise FrameTooLargeError(size, self.max_frame_bytes)
        return decode_body(self._read_exactly(size))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass


def connect_stream(
    host: str,
    port: int,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    timeout: Optional[float] = None,
) -> SyncFrameStream:
    """Dial the server and wrap the socket in a :class:`SyncFrameStream`.

    ``timeout`` bounds every blocking socket operation (connect
    included); ``None`` waits forever — the right default for a fleet
    driver that would rather block than spuriously fail mid-run.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return SyncFrameStream(sock, max_frame_bytes)
