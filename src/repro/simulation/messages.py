"""Message and packet accounting (Section 7.1, "Measures").

"A packet contains at most (576 - 40) / 8 = 67 (double-precision)
values since the typical maximum transmission unit (MTU) over a network
is 576 bytes and a packet has a 40-byte header."  Shapes cost: 3 values
per circle, 3 per square, 4 per rectangle; tile regions ship in the
compressed form of :mod:`repro.core.compression`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

MTU_BYTES = 576
HEADER_BYTES = 40
VALUE_BYTES = 8
VALUES_PER_PACKET = (MTU_BYTES - HEADER_BYTES) // VALUE_BYTES  # 67

LOCATION_VALUES = 2  # (x, y)
POINT_VALUES = 2  # the optimal meeting point in a notification
CIRCLE_VALUES = 3
SQUARE_VALUES = 3
RECT_VALUES = 4


class MessageKind(Enum):
    """The three message types of Fig. 3, plus the periodic baseline's."""

    LOCATION_UPDATE = "location_update"  # step 1 and probe replies
    PROBE_REQUEST = "probe_request"  # step 2, server -> client
    RESULT_NOTIFY = "result_notify"  # step 3, server -> client
    PERIODIC_REPORT = "periodic_report"  # baseline without safe regions


@dataclass(frozen=True, slots=True)
class Message:
    """One message with its payload size in values."""

    kind: MessageKind
    values: int
    upstream: bool  # True: client -> server

    @property
    def packets(self) -> int:
        return packets_for_values(self.values)


def packets_for_values(values: int) -> int:
    """TCP packets needed for a payload of ``values`` doubles (min 1)."""
    if values < 0:
        raise ValueError("negative payload")
    return max(1, math.ceil(values / VALUES_PER_PACKET))


def location_update() -> Message:
    return Message(MessageKind.LOCATION_UPDATE, LOCATION_VALUES, upstream=True)


def probe_request() -> Message:
    return Message(MessageKind.PROBE_REQUEST, 0, upstream=False)


def result_notify(region_values: int) -> Message:
    """Step 3: the meeting point plus one safe region."""
    return Message(
        MessageKind.RESULT_NOTIFY, POINT_VALUES + region_values, upstream=False
    )


def periodic_report() -> Message:
    return Message(MessageKind.PERIODIC_REPORT, LOCATION_VALUES, upstream=True)


def periodic_reply() -> Message:
    return Message(MessageKind.RESULT_NOTIFY, POINT_VALUES, upstream=False)
