"""Safe-region policies: the method variants compared in Section 7.

* ``Circle`` — Circle-MSR (Section 4).
* ``Tile`` — Tile-MSR with undirected ordering, GT-Verify and index
  pruning (Section 5).
* ``Tile-D`` — Tile with the directed ordering (Section 5.2).
* ``Tile-D-b`` — Tile-D with the buffering optimization (Section 5.4).
* ``Periodic`` — the strawman from the introduction: every client
  reports every timestamp.

Each policy can target the MAX objective (MPN) or SUM (Sum-MPN).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional

from repro.core.types import Ordering, TileMSRConfig, VerifierKind
from repro.gnn.aggregate import Aggregate


class PolicyKind(Enum):
    """The built-in method families compared in the paper.

    Kept for describing the paper's policies; the serving layer does
    not branch on it — it resolves :attr:`Policy.strategy_name` in the
    strategy registry of :mod:`repro.service.strategies` instead.
    """

    CIRCLE = "circle"
    TILE = "tile"
    PERIODIC = "periodic"


@dataclass(frozen=True)
class Policy:
    """A named safe-region method with its configuration.

    ``strategy`` names the registered safe-region strategy serving this
    policy; when ``None`` the built-in ``kind``'s name is used.  Custom
    methods set ``strategy`` (see :func:`custom_policy`) and need no
    ``PolicyKind`` at all.
    """

    name: str
    kind: Optional[PolicyKind] = None
    objective: Aggregate = Aggregate.MAX
    tile_config: Optional[TileMSRConfig] = None
    strategy: Optional[str] = None

    @property
    def strategy_name(self) -> str:
        """The registry key this policy resolves to."""
        if self.strategy is not None:
            return self.strategy
        if self.kind is not None:
            return self.kind.value
        raise ValueError(f"policy {self.name!r} names no strategy")

    def with_objective(self, objective: Aggregate) -> "Policy":
        cfg = self.tile_config
        if cfg is not None:
            cfg = replace(cfg, objective=objective)
        suffix = "-sum" if objective is Aggregate.SUM else ""
        base = self.name.removesuffix("-sum")
        return Policy(base + suffix, self.kind, objective, cfg, self.strategy)


def custom_policy(
    name: str,
    strategy: str,
    objective: Aggregate = Aggregate.MAX,
    tile_config: Optional[TileMSRConfig] = None,
) -> Policy:
    """A policy served by a custom registered strategy."""
    return Policy(name, None, objective, tile_config, strategy)


def net_circle_policy(objective: Aggregate = Aggregate.MAX) -> Policy:
    """Circle-MSR under road-network distance (strategy ``net_circle``).

    Sessions under this policy must be opened on a network space
    (:class:`repro.space.network.NetworkPOISpace`).
    """
    return custom_policy("Net-Circle", "net_circle", objective)


def net_tile_policy(
    objective: Aggregate = Aggregate.MAX,
    alpha: int = 20,
    split_level: int = 2,
    max_radius_factor: float = 8.0,
) -> Policy:
    """Tile-MSR as recursive road partitions (strategy ``net_tile``)."""
    # Deferred import: the network config lives with the network stack
    # (networkx), which plain Euclidean deployments never load.
    from repro.network_ext.tile_msr import NetworkTileConfig

    cfg = NetworkTileConfig(
        alpha=alpha, split_level=split_level, max_radius_factor=max_radius_factor
    )
    return Policy("Net-Tile", None, objective, cfg, "net_tile")


def periodic_policy(objective: Aggregate = Aggregate.MAX) -> Policy:
    return Policy("Periodic", PolicyKind.PERIODIC, objective)


def circle_policy(objective: Aggregate = Aggregate.MAX) -> Policy:
    return Policy("Circle", PolicyKind.CIRCLE, objective)


def tile_policy(
    objective: Aggregate = Aggregate.MAX,
    alpha: int = 30,
    split_level: int = 2,
    verifier: VerifierKind = VerifierKind.GT,
) -> Policy:
    cfg = TileMSRConfig(
        alpha=alpha,
        split_level=split_level,
        ordering=Ordering.UNDIRECTED,
        verifier=verifier,
        objective=objective,
    )
    return Policy("Tile", PolicyKind.TILE, objective, cfg)


def tile_d_policy(
    objective: Aggregate = Aggregate.MAX,
    alpha: int = 30,
    split_level: int = 2,
    verifier: VerifierKind = VerifierKind.GT,
) -> Policy:
    cfg = TileMSRConfig(
        alpha=alpha,
        split_level=split_level,
        ordering=Ordering.DIRECTED,
        verifier=verifier,
        objective=objective,
    )
    return Policy("Tile-D", PolicyKind.TILE, objective, cfg)


def tile_d_b_policy(
    b: int = 100,
    objective: Aggregate = Aggregate.MAX,
    alpha: int = 30,
    split_level: int = 2,
    verifier: VerifierKind = VerifierKind.GT,
) -> Policy:
    cfg = TileMSRConfig(
        alpha=alpha,
        split_level=split_level,
        ordering=Ordering.DIRECTED,
        verifier=verifier,
        objective=objective,
        buffer_b=b,
    )
    return Policy(f"Tile-D-b{b}", PolicyKind.TILE, objective, cfg)
