"""Self-tuning tile budgets (inspired by ref. [9]'s adjustable regions).

Tile-MSR's tile limit alpha trades server CPU against update frequency
(see the alpha ablation in ``benchmarks/test_ablation.py``).  The right
alpha depends on the group's behaviour: fast erratic groups escape even
large regions quickly, so the extra tiles are wasted work; slow groups
amortize big regions over long quiet stretches.  The paper fixes
alpha = 30 for its workloads; ref. [9] shows such knobs can self-tune
from the observed update stream.

:class:`AdaptiveAlphaController` implements a multiplicative
increase/decrease rule on the *observed inter-update interval*:

* interval shorter than ``target_interval`` — the region was escaped
  too quickly for the effort spent; growing it further has better
  marginal value, so alpha increases;
* interval much longer than the target — the region outlived its
  usefulness; shrink alpha and save CPU;
* an optional hard ``cpu_budget`` per update overrides growth.

The driver retunes the session through
:meth:`repro.service.MPNService.update_policy` before each
recomputation — the alpha swap is a policy update on a live session,
not a new server.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.index.backend import SpatialIndex
from repro.mobility.trajectory import Trajectory
from repro.service.service import MPNService
from repro.simulation.engine import (
    _deliver,
    _make_clients,
    _open_group_session,
)
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.policies import Policy


@dataclass
class AdaptiveConfig:
    """Tuning of the alpha controller."""

    alpha_min: int = 4
    alpha_max: int = 48
    target_interval: float = 40.0  # desired quiet timestamps per update
    grow_factor: float = 1.5
    shrink_factor: float = 0.75
    cpu_budget: Optional[float] = None  # max seconds per update

    def __post_init__(self) -> None:
        if not 1 <= self.alpha_min <= self.alpha_max:
            raise ValueError("need 1 <= alpha_min <= alpha_max")
        if self.grow_factor <= 1.0 or not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("grow_factor > 1 and 0 < shrink_factor < 1 required")


class AdaptiveAlphaController:
    """Multiplicative increase/decrease of the tile budget."""

    def __init__(self, config: AdaptiveConfig, initial_alpha: int = 16):
        self.config = config
        self._alpha = float(
            min(max(initial_alpha, config.alpha_min), config.alpha_max)
        )
        self.history: list[int] = [self.alpha]

    @property
    def alpha(self) -> int:
        return int(round(self._alpha))

    def observe_update(self, interval: float, cpu_seconds: float) -> int:
        """Feed one update event; returns the alpha for the next one."""
        cfg = self.config
        if cfg.cpu_budget is not None and cpu_seconds > cfg.cpu_budget:
            self._alpha *= cfg.shrink_factor
        elif interval < cfg.target_interval:
            self._alpha *= cfg.grow_factor
        elif interval > 2.0 * cfg.target_interval:
            self._alpha *= cfg.shrink_factor
        self._alpha = min(max(self._alpha, cfg.alpha_min), cfg.alpha_max)
        self.history.append(self.alpha)
        return self.alpha


def run_adaptive_simulation(
    base_policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    adaptive: AdaptiveConfig | None = None,
    n_timestamps: Optional[int] = None,
) -> tuple[SimulationMetrics, AdaptiveAlphaController]:
    """The monitoring loop with a per-update alpha adjustment.

    ``base_policy`` must be a tile policy; its config's alpha seeds the
    controller and the session's policy is retuned before every
    recomputation.
    """
    if base_policy.tile_config is None:
        raise ValueError("adaptive tuning applies to tile policies only")
    if adaptive is None:
        adaptive = AdaptiveConfig()
    controller = AdaptiveAlphaController(
        adaptive, base_policy.tile_config.alpha
    )
    steps = n_timestamps if n_timestamps is not None else min(
        len(t) for t in trajectories
    )

    def tuned_policy() -> Policy:
        config = replace(base_policy.tile_config, alpha=controller.alpha)
        return replace(base_policy, tile_config=config)

    clients = _make_clients(base_policy, trajectories)
    service = MPNService(tree)
    session_id, _ = _open_group_session(service, tuned_policy(), clients)
    metrics = service.session_metrics(session_id)
    last_update_t = 0

    for t in range(1, steps):
        for client in clients:
            client.advance(t)
        trigger = next(
            (i for i, c in enumerate(clients) if c.outside_region()), None
        )
        if trigger is None:
            continue
        service.update_policy(session_id, tuned_policy())
        cpu_before = metrics.server_cpu_seconds
        client = clients[trigger]
        notification = service.report(
            session_id, trigger, client.position, client.heading, client.theta
        )
        if notification is None:  # pragma: no cover - escape implies a round
            continue
        _deliver(clients, notification)
        cpu_spent = metrics.server_cpu_seconds - cpu_before
        controller.observe_update(float(t - last_update_t), cpu_spent)
        last_update_t = t
    metrics.timestamps = steps
    return metrics, controller
