"""A multi-group server with dynamic POI updates.

The paper's protocol serves one group; a deployed server handles many
groups against one shared POI R-tree, and the POI set itself changes
(venues open and close).  Safe regions make both cheap:

* **POI insertion.**  A new point ``p`` can only invalidate a group if
  it could beat the group's current meeting point somewhere inside the
  safe regions — exactly the conservative test of Lemma 1 (its SUM
  analogue sums the per-user gaps).  Groups passing the test keep
  their regions; only failing groups are recomputed and re-notified.
* **POI deletion.**  Removing a point other than a group's ``po``
  never invalidates that group: the regions guaranteed ``po`` beats
  *every* other point, and deletion only removes competitors.  Only
  groups whose meeting point itself disappears are recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.verify import verify_regions
from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.gnn.aggregate import Aggregate
from repro.index.backend import SpatialIndex
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.messages import result_notify
from repro.simulation.policies import Policy
from repro.simulation.server import MPNServer


def sum_verify_regions(regions: Sequence[Region], po: Point, p: Point) -> bool:
    """Lemma 1's SUM analogue: conservative validity of ``po`` vs ``p``.

    ``sum_i min_dist(p, Ri) >= sum_i max_dist(po, Ri)`` guarantees
    ``||p, L||_sum >= ||po, L||_sum`` for every instance ``L``.
    """
    gap = sum(r.min_dist(p) for r in regions) - sum(r.max_dist(po) for r in regions)
    return gap >= 0.0


@dataclass
class GroupSession:
    """Server-side state for one registered group."""

    group_id: int
    policy: Policy
    positions: list[Point]
    po: Optional[Point] = None
    regions: list[Region] = field(default_factory=list)
    metrics: SimulationMetrics = field(default_factory=SimulationMetrics)

    def region_valid_against(self, p: Point) -> bool:
        if self.po is None or p == self.po:
            return True
        if self.policy.objective is Aggregate.SUM:
            return sum_verify_regions(self.regions, self.po, p)
        return verify_regions(self.regions, self.po, p)


class MultiGroupServer:
    """Shared-index server for many concurrent MPN groups."""

    def __init__(self, tree: SpatialIndex):
        self.tree = tree
        self._sessions: dict[int, GroupSession] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Group lifecycle
    # ------------------------------------------------------------------

    def register_group(self, users: Sequence[Point], policy: Policy) -> int:
        """Register a group; computes its first result and regions."""
        group_id = self._next_id
        self._next_id += 1
        session = GroupSession(group_id, policy, list(users))
        self._sessions[group_id] = session
        self._recompute(session)
        return group_id

    def unregister_group(self, group_id: int) -> None:
        self._sessions.pop(group_id)

    def session(self, group_id: int) -> GroupSession:
        return self._sessions[group_id]

    def group_ids(self) -> list[int]:
        return sorted(self._sessions)

    # ------------------------------------------------------------------
    # Location updates
    # ------------------------------------------------------------------

    def report_locations(
        self, group_id: int, positions: Sequence[Point]
    ) -> tuple[Point, list[Region]]:
        """The group's probe round: fresh positions, fresh regions.

        Called when some member has escaped her region (the engine
        decides that client-side); returns the new result and regions.
        """
        session = self._sessions[group_id]
        if len(positions) != len(session.positions):
            raise ValueError("position count does not match group size")
        session.positions = list(positions)
        self._recompute(session)
        return session.po, session.regions

    def _recompute(self, session: GroupSession) -> None:
        server = MPNServer(self.tree, session.policy)
        response = server.compute(session.positions)
        session.po = response.po
        session.regions = list(response.regions)
        session.metrics.charge_update(response.cpu_seconds, response.stats)
        for values in response.region_values:
            session.metrics.record_message(result_notify(values))

    # ------------------------------------------------------------------
    # Dynamic POI updates
    # ------------------------------------------------------------------

    def update_pois(
        self,
        adds: Sequence[tuple[Point, object]] = (),
        removes: Sequence[tuple[Point, object]] = (),
    ) -> list[int]:
        """Apply a batch of POI inserts/deletes, then recompute once.

        Prefer this over per-item :meth:`add_poi` / :meth:`remove_poi`
        under churn: the flat backend rebuilds its packing per
        mutation, and a batch pays that rebuild once.  Each invalidated
        group is recomputed a single time even if several updates
        touch it.  Returns the ids of the recomputed groups.
        """
        self.tree.bulk_update(adds, removes)
        removed = {p for p, _ in removes}
        invalidated = []
        for session in self._sessions.values():
            if session.po in removed or any(
                not session.region_valid_against(p) for p, _ in adds
            ):
                self._recompute(session)
                invalidated.append(session.group_id)
        return invalidated

    def add_poi(self, p: Point, payload=None) -> list[int]:
        """Insert a POI; recompute only the groups it invalidates.

        Returns the ids of the recomputed (re-notified) groups.  On
        the flat backend each call rebuilds the packing — batch
        update-heavy workloads through :meth:`update_pois`.
        """
        self.tree.insert(p, payload)
        invalidated = []
        for session in self._sessions.values():
            if not session.region_valid_against(p):
                self._recompute(session)
                invalidated.append(session.group_id)
        return invalidated

    def remove_poi(self, p: Point, payload=None) -> list[int]:
        """Delete a POI; only groups meeting *at* it are recomputed."""
        if not self.tree.delete(p, payload):
            raise KeyError(f"POI {p} not present")
        invalidated = []
        for session in self._sessions.values():
            if session.po == p:
                self._recompute(session)
                invalidated.append(session.group_id)
        return invalidated
