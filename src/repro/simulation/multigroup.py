"""Multi-group serving shim over :class:`repro.service.MPNService`.

.. deprecated::
    ``MultiGroupServer`` predates the session-oriented service; it
    survives as a thin compatibility wrapper.  New code should talk to
    :class:`repro.service.MPNService` directly — same semantics, plus
    report events, probers, per-session *and* service-wide metrics, and
    typed notifications.

The POI-churn reasoning lives with the session state in
:mod:`repro.service.session`:

* **POI insertion.**  A new point ``p`` can only invalidate a group if
  it could beat the group's current meeting point somewhere inside the
  safe regions — exactly the conservative test of Lemma 1 (its SUM
  analogue sums the per-user gaps).  Groups passing the test keep
  their regions; only failing groups are recomputed and re-notified.
* **POI deletion.**  Removing a point other than a group's ``po``
  never invalidates that group: the regions guaranteed ``po`` beats
  *every* other point, and deletion only removes competitors.  Only
  groups whose meeting point itself disappears are recomputed.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.index.backend import SpatialIndex
from repro.service.service import MPNService
from repro.service.session import ServiceSession, sum_verify_regions
from repro.simulation.policies import Policy

__all__ = [
    "MultiGroupServer",
    "GroupSession",
    "sum_verify_regions",
]

# Backwards-compatible alias: group sessions are service sessions now.
GroupSession = ServiceSession


class MultiGroupServer:
    """Shared-index server for many concurrent MPN groups.

    Unknown group ids raise
    :class:`repro.service.errors.UnknownSessionError` (a ``KeyError``
    subclass, so pre-existing handlers keep working).
    """

    def __init__(self, tree: SpatialIndex):
        warnings.warn(
            "MultiGroupServer is deprecated; talk to repro.service."
            "MPNService directly (open_session/report/update_pois, or the "
            "dispatch() envelope API) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._service = MPNService(tree)

    @property
    def service(self) -> MPNService:
        """The underlying session service."""
        return self._service

    @property
    def tree(self) -> SpatialIndex:
        return self._service.tree

    # ------------------------------------------------------------------
    # Group lifecycle
    # ------------------------------------------------------------------

    def register_group(self, users: Sequence[Point], policy: Policy) -> int:
        """Register a group; computes its first result and regions."""
        return self._service.open_session(users, policy).session_id

    def unregister_group(self, group_id: int) -> None:
        self._service.close_session(group_id)

    def session(self, group_id: int) -> GroupSession:
        return self._service.session(group_id)

    def group_ids(self) -> list[int]:
        return self._service.session_ids()

    # ------------------------------------------------------------------
    # Location updates
    # ------------------------------------------------------------------

    def report_locations(
        self, group_id: int, positions: Sequence[Point]
    ) -> tuple[Point, list[Region]]:
        """The group's probe round: fresh positions, fresh regions.

        Called when some member has escaped her region (the engine
        decides that client-side); returns the new result and regions.
        """
        notification = self._service.update_locations(group_id, positions)
        return notification.po, list(notification.regions)

    # ------------------------------------------------------------------
    # Dynamic POI updates
    # ------------------------------------------------------------------

    def update_pois(
        self,
        adds: Sequence[tuple[Point, object]] = (),
        removes: Sequence[tuple[Point, object]] = (),
    ) -> list[int]:
        """Apply a batch of POI inserts/deletes, then recompute once.

        Prefer this over per-item :meth:`add_poi` / :meth:`remove_poi`
        under churn: the flat backend rebuilds its packing per
        mutation, and a batch pays that rebuild once.  Each invalidated
        group is recomputed a single time even if several updates
        touch it.  Returns the ids of the recomputed groups.
        """
        return [
            n.session_id for n in self._service.update_pois(adds, removes)
        ]

    def add_poi(self, p: Point, payload=None) -> list[int]:
        """Insert a POI; recompute only the groups it invalidates.

        Returns the ids of the recomputed (re-notified) groups.  On
        the flat backend each call rebuilds the packing — batch
        update-heavy workloads through :meth:`update_pois`.
        """
        return [n.session_id for n in self._service.add_poi(p, payload)]

    def remove_poi(self, p: Point, payload=None) -> list[int]:
        """Delete a POI; only groups meeting *at* it are recomputed."""
        return [n.session_id for n in self._service.remove_poi(p, payload)]
