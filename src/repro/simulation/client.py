"""A simulated mobile client: trajectory playback plus safe-region test."""

from __future__ import annotations

from typing import Optional

from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.mobility.direction import DirectionPredictor
from repro.mobility.trajectory import Trajectory


class SimClient:
    """One group member replaying her trajectory.

    The client holds the latest safe region the server assigned and
    reports (via the engine) as soon as her next location escapes it —
    the trigger of the three-step protocol in Fig. 3.
    """

    def __init__(self, trajectory: Trajectory, track_direction: bool = False):
        self.trajectory = trajectory
        self.region: Optional[Region] = None
        self.predictor = DirectionPredictor() if track_direction else None
        self._position = trajectory[0]
        if self.predictor is not None:
            self.predictor.observe(self._position)

    @property
    def position(self) -> Point:
        return self._position

    @property
    def heading(self) -> Optional[float]:
        if self.predictor is None:
            return None
        return self.predictor.heading

    @property
    def theta(self) -> Optional[float]:
        if self.predictor is None:
            return None
        return self.predictor.theta

    def advance(self, t: int) -> Point:
        """Move to timestamp ``t``; returns the new position."""
        self._position = self.trajectory.at(t)
        if self.predictor is not None:
            self.predictor.observe(self._position)
        return self._position

    def outside_region(self, eps: float = 1e-9) -> bool:
        """Has the client escaped her current safe region?"""
        if self.region is None:
            return True
        return not self.region.contains_point(self._position, eps)

    def assign_region(self, region: Region) -> None:
        self.region = region
