"""Trajectory drivers: playback of mobile groups against the service.

The serving logic lives in :class:`repro.service.MPNService`; this
module only *drives* it.  One simulated run plays a group of
trajectories for ``n_timestamps`` steps.  Whenever some client's new
location escapes her safe region, she fires a report event and the
three-step protocol of Fig. 3 executes inside the service: one
location update from the trigger client, ``m - 1`` probe requests and
replies, and ``m`` result notifications carrying the new meeting point
and safe regions.

Setting ``check_every`` to a positive value asserts, every so many
quiet timestamps, that the cached meeting point still equals the exact
aggregate nearest neighbor — the paper's core guarantee (Definition 3).
This is how the integration tests establish end-to-end soundness.

:func:`run_service` scales the same playback to many concurrent groups
with interleaved timestamps and POI churn against one shared index —
the deployment workload the single-group API cannot express.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.geometry.point import Point
from repro.index.backend import SpatialIndex
from repro.mobility.trajectory import Trajectory
from repro.service.api import ServiceBackend
from repro.service.messages import MemberState, Notification, ReportEvent
from repro.service.service import MPNService
from repro.service.strategies import SafeRegionStrategy, get_strategy
from repro.simulation.client import SimClient
from repro.simulation.messages import periodic_reply, periodic_report
from repro.simulation.metrics import SimulationMetrics, average_metrics
from repro.simulation.policies import Policy
from repro.space import Space, as_space


class SafeRegionViolation(AssertionError):
    """The cached meeting point diverged from the exact one."""


def run_simulation(
    policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    n_timestamps: Optional[int] = None,
    check_every: int = 0,
) -> SimulationMetrics:
    """Simulate one group under one policy; returns the metrics."""
    if not trajectories:
        raise ValueError("need at least one trajectory")
    steps = n_timestamps if n_timestamps is not None else min(
        len(t) for t in trajectories
    )
    if steps < 1:
        raise ValueError("need at least one timestamp")
    strategy = get_strategy(policy)
    if strategy.periodic:
        return _run_periodic(strategy, trajectories, tree, steps)
    return _run_safe_regions(policy, trajectories, tree, steps, check_every)


def _run_periodic(
    strategy: SafeRegionStrategy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    steps: int,
) -> SimulationMetrics:
    """The strawman: every client reports every timestamp."""
    metrics = SimulationMetrics(timestamps=steps)
    m = len(trajectories)
    last_po = None
    for t in range(steps):
        users = [traj.at(t) for traj in trajectories]
        start = time.perf_counter()
        result = strategy.compute(users, tree)
        metrics.charge_update(time.perf_counter() - start)
        if t > 0 and result.po != last_po:
            metrics.result_changes += 1
        last_po = result.po
        for _ in range(m):
            metrics.record_message(periodic_report())
            metrics.record_message(periodic_reply())
    return metrics


def _make_clients(
    policy: Policy, trajectories: Sequence[Trajectory]
) -> list[SimClient]:
    # ``ordering`` only exists on the Euclidean tile config; network
    # tile configs (and custom ones) never track direction.
    ordering = getattr(policy.tile_config, "ordering", None)
    track_direction = ordering is not None and ordering.value == "directed"
    return [SimClient(traj, track_direction) for traj in trajectories]


def _client_prober(clients: Sequence[SimClient]) -> Callable[[int], MemberState]:
    """Probe replies (step 2): read the probed client's live state."""

    def prober(i: int) -> MemberState:
        client = clients[i]
        return MemberState(client.position, client.heading, client.theta)

    return prober


def _open_group_session(
    service: "ServiceBackend",
    policy: Policy,
    clients: Sequence[SimClient],
    space: Union[None, str, Space] = None,
) -> tuple[int, Notification]:
    handle = service.open_session(
        [MemberState(c.position, c.heading, c.theta) for c in clients],
        policy,
        prober=_client_prober(clients),
        space=space,
    )
    _deliver(clients, handle.notification)
    return handle.session_id, handle.notification


def _deliver(clients: Sequence[SimClient], notification: Notification) -> None:
    """Step 3 lands client-side: each member caches her new region."""
    for client, region in zip(clients, notification.regions):
        client.assign_region(region)


def _advance_and_find_trigger(
    clients: Sequence[SimClient], t: int
) -> Optional[tuple[int, MemberState]]:
    """Advance one group to ``t``; the escaping member's report, if any."""
    for client in clients:
        client.advance(t)
    trigger = next(
        (i for i, c in enumerate(clients) if c.outside_region()), None
    )
    if trigger is None:
        return None
    client = clients[trigger]
    return trigger, MemberState(client.position, client.heading, client.theta)


def _play_timestamp(
    service: "ServiceBackend",
    session_id: int,
    clients: Sequence[SimClient],
    t: int,
) -> Optional[Notification]:
    """Advance one group to ``t``; fire a report if someone escaped."""
    escaped = _advance_and_find_trigger(clients, t)
    if escaped is None:
        return None
    trigger, state = escaped
    notification = service.report(
        session_id, trigger, state.point, state.heading, state.theta
    )
    if notification is not None:
        _deliver(clients, notification)
    return notification


def _run_safe_regions(
    policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    steps: int,
    check_every: int,
) -> SimulationMetrics:
    clients = _make_clients(policy, trajectories)
    service = MPNService(tree)
    session_id, registration = _open_group_session(service, policy, clients)
    current_po = registration.po

    for t in range(1, steps):
        notification = _play_timestamp(service, session_id, clients, t)
        if notification is None:
            if check_every > 0 and t % check_every == 0:
                _assert_result_valid(policy, tree, clients, current_po)
            continue
        current_po = notification.po
    metrics = service.session_metrics(session_id)
    metrics.timestamps = steps
    return metrics


def _assert_result_valid(
    policy: Policy,
    tree: Union[SpatialIndex, Space],
    clients: Sequence[SimClient],
    current_po: object,
) -> None:
    """The headline guarantee: quiet users => the result is still exact.

    Space-generic (``tree`` is a space or a bare Euclidean index): the
    exact best aggregate distance over the space's current POI set must
    equal the cached point's aggregate distance.  Ties are tolerated —
    the optimal point need not be unique.
    """
    space = as_space(tree)
    users = [c.position for c in clients]
    best_dist, best_poi = space.gnn(users, 1, policy.objective)[0]
    cached_dist = space.aggregate_dist(current_po, users, policy.objective)
    if cached_dist > best_dist + 1e-7:
        raise SafeRegionViolation(
            f"cached meeting point {current_po} has aggregate distance "
            f"{cached_dist}, but {best_poi} achieves {best_dist}"
        )


def run_groups(
    policy: Policy,
    groups: Sequence[Sequence[Trajectory]],
    tree: SpatialIndex,
    n_timestamps: Optional[int] = None,
    check_every: int = 0,
) -> SimulationMetrics:
    """Average metrics across user groups, as reported in Section 7.1."""
    runs = [
        run_simulation(policy, group, tree, n_timestamps, check_every)
        for group in groups
    ]
    return average_metrics(runs)


# ----------------------------------------------------------------------
# Multi-group serving
# ----------------------------------------------------------------------

# POI churn for one timestamp: an (adds, removes) batch of (position,
# payload) pairs — optionally (adds, removes, space) to target a
# non-default space's index, where space is a live Space or a
# backend-registered name (a name is the only form a cluster accepts)
# — or None for a quiet timestamp.
ChurnBatch = Union[
    tuple[Sequence[tuple[Point, object]], Sequence[tuple[Point, object]]],
    tuple[
        Sequence[tuple[object, object]],
        Sequence[tuple[object, object]],
        Union[str, Space],
    ],
]
ChurnSchedule = Union[
    Mapping[int, ChurnBatch], Callable[[int], Optional[ChurnBatch]]
]


def _no_churn(t: int) -> Optional[ChurnBatch]:
    return None


@dataclass
class ServiceRunResult:
    """Outcome of :func:`run_service`."""

    service: ServiceBackend
    session_ids: list[int]
    session_metrics: list[SimulationMetrics]
    churn_notified: list[tuple[int, list[int]]] = field(default_factory=list)

    @property
    def backend(self) -> ServiceBackend:
        """The backend the fleet ran against (alias of ``service``)."""
        return self.service

    @property
    def metrics(self) -> SimulationMetrics:
        """Service-wide traffic across every session (cluster backends
        answer with their merged cluster-wide counters)."""
        return self.service.metrics


def run_service(
    groups: Sequence[Sequence[Trajectory]],
    policies: Union[Policy, Sequence[Policy]],
    tree: Union[None, SpatialIndex, Space] = None,
    n_timestamps: Optional[int] = None,
    check_every: int = 0,
    churn: Optional[ChurnSchedule] = None,
    batched: Optional[bool] = None,
    spaces: Optional[
        Union[str, Space, Sequence[Union[None, str, Space]]]
    ] = None,
    backend: Optional[ServiceBackend] = None,
) -> ServiceRunResult:
    """Play many concurrent groups against one shared serving backend.

    All groups advance with interleaved timestamps: at each step every
    group moves, and whichever members escaped their regions fire
    report events against the same backend (and the same POI set).
    ``policies`` is either one policy for every group or one per group.

    ``backend`` is any :class:`~repro.service.api.ServiceBackend` with
    the in-process convenience surface — a prebuilt
    :class:`MPNService` or a sharded
    :class:`repro.cluster.MPNCluster`; the whole fleet runs unchanged
    against either.  When ``backend`` is ``None`` the function builds
    a single ``MPNService(tree, batched=batched)`` (``tree`` is
    required exactly in that case).  A prebuilt backend already chose
    its fleet path, so combining ``backend=`` with an explicit
    ``batched=`` raises instead of silently overriding either.

    ``spaces`` makes the fleet *mixed-metric*: one space per group (or
    a single one for all; ``None`` entries mean the backend's default
    space).  An entry may be a live :class:`~repro.space.base.Space`
    (single-service runs) or a name registered on the backend via
    ``add_space`` — the only form a cluster accepts, since cluster
    spaces are per-shard replicas.  Euclidean groups replaying planar
    trajectories and road-network groups replaying
    :class:`~repro.network_ext.monitor.NetworkTrajectory` sequences
    under ``net_circle`` / ``net_tile`` policies then coexist on the
    one backend, each session computing against its own space's index
    — and the exactness checks run per group in its own metric.

    ``churn`` schedules POI updates: a mapping (or callable) from
    timestamp to an ``(adds, removes)`` batch — or an ``(adds,
    removes, space)`` triple targeting a non-default space — applied
    through :meth:`MPNService.update_pois` *before* the groups move at
    that timestamp.  Sessions invalidated by the batch are re-notified
    and their clients pick up the fresh regions, exactly like a report
    round.

    ``check_every`` asserts, every so many timestamps, that every
    session's cached meeting point is still exactly optimal over the
    *current* POI set (ties tolerated) — the Definition 3 guarantee
    under concurrency and churn.

    ``batched`` picks the fleet execution path: when true (the
    default) each timestamp's escape events across ALL groups are
    collected and served with one :meth:`MPNService.report_many` call
    (one batched kernel dispatch per wave); when false every group
    fires its own scalar :meth:`MPNService.report`.  The two paths are
    verified equivalent — identical notifications and metrics counters
    — by ``tests/test_service_batch_equivalence.py``.
    """
    if not groups:
        raise ValueError("need at least one group")
    if isinstance(policies, Policy):
        policies = [policies] * len(groups)
    if len(policies) != len(groups):
        raise ValueError("need one policy per group (or a single policy)")
    if spaces is None or isinstance(spaces, (str, Space)):
        spaces = [spaces] * len(groups)
    if len(spaces) != len(groups):
        raise ValueError("need one space per group (or a single space)")
    steps = n_timestamps if n_timestamps is not None else min(
        len(t) for group in groups for t in group
    )
    if steps < 1:
        raise ValueError("need at least one timestamp")
    if callable(churn):
        churn_at = churn
    elif churn is not None:
        churn_at = churn.get
    else:
        churn_at = _no_churn

    if backend is None:
        if tree is None:
            raise ValueError("need a tree/space (or a prebuilt backend)")
        service = MPNService(tree, batched=True if batched is None else batched)
        batched = service.batched
    else:
        if tree is not None:
            raise ValueError("pass either tree or backend, not both")
        if batched is not None:
            raise ValueError(
                "batched is the backend's own setting; construct the "
                "backend with batched=... instead of passing both"
            )
        service = backend
        batched = getattr(backend, "batched", True)
    # The space each group's exactness checks measure in: name entries
    # resolve through the backend's registry (a cluster answers with a
    # replica — every replica holds the same POI set).
    check_spaces = [
        service.get_space(s) if isinstance(s, str)
        else (s if s is not None else service.space)
        for s in spaces
    ]
    # Churn scheduled for t=0 lands before any session registers.
    initial_batch = churn_at(0)
    if initial_batch is not None:
        service.update_pois(*initial_batch)
    fleet: list[Sequence[SimClient]] = []
    session_ids: list[int] = []
    pos: dict[int, Point] = {}  # session id -> cached meeting point
    by_session: dict[int, Sequence[SimClient]] = {}
    for policy, group, space_ref in zip(policies, groups, spaces):
        clients = _make_clients(policy, group)
        session_id, registration = _open_group_session(
            service, policy, clients, space_ref
        )
        fleet.append(clients)
        session_ids.append(session_id)
        pos[session_id] = registration.po
        by_session[session_id] = clients

    churn_notified: list[tuple[int, list[int]]] = []
    for t in range(1, steps):
        batch = churn_at(t)
        if batch is not None:
            notifications = service.update_pois(*batch)
            for notification in notifications:
                _deliver(by_session[notification.session_id], notification)
                pos[notification.session_id] = notification.po
            if notifications:
                churn_notified.append(
                    (t, [n.session_id for n in notifications])
                )
        if batched:
            # Collect the tick's escape events fleet-wide, serve them
            # with one report_many wave (one batched kernel dispatch).
            events: list[ReportEvent] = []
            for session_id, clients in zip(session_ids, fleet):
                escaped = _advance_and_find_trigger(clients, t)
                if escaped is not None:
                    trigger, state = escaped
                    events.append(ReportEvent(session_id, trigger, state))
            for notification in service.report_many(events):
                if notification is not None:
                    _deliver(by_session[notification.session_id], notification)
                    pos[notification.session_id] = notification.po
        else:
            for session_id, clients in zip(session_ids, fleet):
                notification = _play_timestamp(service, session_id, clients, t)
                if notification is not None:
                    pos[session_id] = notification.po
        if check_every > 0 and t % check_every == 0:
            for policy, check_space, session_id, clients in zip(
                policies, check_spaces, session_ids, fleet
            ):
                _assert_result_valid(
                    policy, check_space, clients, pos[session_id]
                )

    session_metrics = []
    for session_id in session_ids:
        metrics = service.session_metrics(session_id)
        metrics.timestamps = steps
        session_metrics.append(metrics)
    return ServiceRunResult(
        service=service,
        session_ids=session_ids,
        session_metrics=session_metrics,
        churn_notified=churn_notified,
    )
