"""The monitoring loop: trajectory playback against the MPN server.

One simulated run plays a group of trajectories for ``n_timestamps``
steps.  Whenever some client's new location escapes her safe region,
the three-step protocol of Fig. 3 executes and is charged to the
metrics: one location update from the trigger client, ``m - 1`` probe
requests and replies, and ``m`` result notifications carrying the new
meeting point and safe regions.

Setting ``check_every`` to a positive value asserts, every so many
quiet timestamps, that the cached meeting point still equals the exact
aggregate nearest neighbor — the paper's core guarantee (Definition 3).
This is how the integration tests establish end-to-end soundness.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.gnn.aggregate import find_gnn
from repro.index.backend import SpatialIndex
from repro.mobility.trajectory import Trajectory
from repro.simulation.client import SimClient
from repro.simulation.messages import (
    location_update,
    periodic_reply,
    periodic_report,
    probe_request,
    result_notify,
)
from repro.simulation.metrics import SimulationMetrics, average_metrics
from repro.simulation.policies import Policy, PolicyKind
from repro.simulation.server import MPNServer


class SafeRegionViolation(AssertionError):
    """The cached meeting point diverged from the exact one."""


def run_simulation(
    policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    n_timestamps: Optional[int] = None,
    check_every: int = 0,
) -> SimulationMetrics:
    """Simulate one group under one policy; returns the metrics."""
    if not trajectories:
        raise ValueError("need at least one trajectory")
    steps = n_timestamps if n_timestamps is not None else min(
        len(t) for t in trajectories
    )
    if steps < 1:
        raise ValueError("need at least one timestamp")
    if policy.kind is PolicyKind.PERIODIC:
        return _run_periodic(policy, trajectories, tree, steps)
    return _run_safe_regions(policy, trajectories, tree, steps, check_every)


def _run_periodic(
    policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    steps: int,
) -> SimulationMetrics:
    """The strawman: every client reports every timestamp."""
    metrics = SimulationMetrics(timestamps=steps)
    m = len(trajectories)
    last_po = None
    for t in range(steps):
        users = [traj.at(t) for traj in trajectories]
        start = time.perf_counter()
        best = find_gnn(tree, users, 1, policy.objective)
        metrics.charge_update(time.perf_counter() - start)
        po = best[0][1].point
        if t > 0 and po != last_po:
            metrics.result_changes += 1
        last_po = po
        for _ in range(m):
            metrics.record_message(periodic_report())
            metrics.record_message(periodic_reply())
    return metrics


def _run_safe_regions(
    policy: Policy,
    trajectories: Sequence[Trajectory],
    tree: SpatialIndex,
    steps: int,
    check_every: int,
) -> SimulationMetrics:
    track_direction = (
        policy.kind is PolicyKind.TILE
        and policy.tile_config is not None
        and policy.tile_config.ordering.value == "directed"
    )
    clients = [SimClient(traj, track_direction) for traj in trajectories]
    server = MPNServer(tree, policy)
    metrics = SimulationMetrics(timestamps=steps)
    m = len(clients)

    current_po = _recompute(server, clients, metrics, initial=True)

    for t in range(1, steps):
        for client in clients:
            client.advance(t)
        trigger = next((c for c in clients if c.outside_region()), None)
        if trigger is None:
            if check_every > 0 and t % check_every == 0:
                _assert_result_valid(policy, tree, clients, current_po)
            continue
        # Step 1: the trigger reports its location.
        metrics.record_message(location_update())
        # Step 2: probe the other group members.
        for _ in range(m - 1):
            metrics.record_message(probe_request())
            metrics.record_message(location_update())
        new_po = _recompute(server, clients, metrics)
        if new_po != current_po:
            metrics.result_changes += 1
        current_po = new_po
    return metrics


def _recompute(
    server: MPNServer,
    clients: list[SimClient],
    metrics: SimulationMetrics,
    initial: bool = False,
) -> object:
    """Steps 2-3: recompute safe regions, notify every client."""
    users = [c.position for c in clients]
    headings = [c.heading for c in clients]
    thetas = [c.theta for c in clients]
    response = server.compute(users, headings, thetas)
    metrics.charge_update(response.cpu_seconds, response.stats)
    for client, region, values in zip(
        clients, response.regions, response.region_values
    ):
        client.assign_region(region)
        metrics.record_message(result_notify(values))
        metrics.region_values_sent += values
    if initial:
        # Registration: every client reports its location first.
        for _ in clients:
            metrics.record_message(location_update())
    return response.po


def _assert_result_valid(
    policy: Policy,
    tree: SpatialIndex,
    clients: list[SimClient],
    current_po: object,
) -> None:
    """The headline guarantee: quiet users => the result is still exact.

    Ties are tolerated: the exact best aggregate distance must equal
    the cached point's aggregate distance (the optimal point need not
    be unique).
    """
    from repro.gnn.aggregate import aggregate_dist

    users = [c.position for c in clients]
    best_dist, best_entry = find_gnn(tree, users, 1, policy.objective)[0]
    cached_dist = aggregate_dist(current_po, users, policy.objective)
    if cached_dist > best_dist + 1e-7:
        raise SafeRegionViolation(
            f"cached meeting point {current_po} has aggregate distance "
            f"{cached_dist}, but {best_entry.point} achieves {best_dist}"
        )


def run_groups(
    policy: Policy,
    groups: Sequence[Sequence[Trajectory]],
    tree: SpatialIndex,
    n_timestamps: Optional[int] = None,
    check_every: int = 0,
) -> SimulationMetrics:
    """Average metrics across user groups, as reported in Section 7.1."""
    runs = [
        run_simulation(policy, group, tree, n_timestamps, check_every)
        for group in groups
    ]
    return average_metrics(runs)
