"""Metrics collected by the simulation engine (Section 7.1 measures)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import SafeRegionStats
from repro.simulation.messages import Message


@dataclass
class SimulationMetrics:
    """Counters for one simulated run of one group."""

    timestamps: int = 0
    update_events: int = 0  # server-side recomputations (initial excluded)
    result_changes: int = 0  # how often the optimal point actually changed
    messages_up: int = 0
    messages_down: int = 0
    packets_up: int = 0
    packets_down: int = 0
    server_cpu_seconds: float = 0.0
    index_node_accesses: int = 0
    index_queries: int = 0
    tile_verifications: int = 0
    region_values_sent: int = 0

    def charge_update(
        self, cpu_seconds: float, stats: SafeRegionStats | None = None
    ) -> None:
        """Charge one server-side recomputation (and its index work)."""
        self.update_events += 1
        self.server_cpu_seconds += cpu_seconds
        if stats is not None:
            self.index_node_accesses += stats.index_node_accesses
            self.index_queries += stats.index_queries
            self.tile_verifications += stats.tile_verifications

    def record_message(self, message: Message) -> None:
        if message.upstream:
            self.messages_up += 1
            self.packets_up += message.packets
        else:
            self.messages_down += 1
            self.packets_down += message.packets

    @property
    def messages_total(self) -> int:
        return self.messages_up + self.messages_down

    @property
    def packets_total(self) -> int:
        return self.packets_up + self.packets_down

    @property
    def update_frequency(self) -> float:
        """Update events per timestamp (the paper's update frequency)."""
        if self.timestamps == 0:
            return 0.0
        return self.update_events / self.timestamps

    @property
    def cpu_per_update(self) -> float:
        """Computation time for safe regions per update (Section 7.1)."""
        if self.update_events == 0:
            return 0.0
        return self.server_cpu_seconds / self.update_events

    def merge(self, other: "SimulationMetrics") -> None:
        self.timestamps += other.timestamps
        self.update_events += other.update_events
        self.result_changes += other.result_changes
        self.messages_up += other.messages_up
        self.messages_down += other.messages_down
        self.packets_up += other.packets_up
        self.packets_down += other.packets_down
        self.server_cpu_seconds += other.server_cpu_seconds
        self.index_node_accesses += other.index_node_accesses
        self.index_queries += other.index_queries
        self.tile_verifications += other.tile_verifications
        self.region_values_sent += other.region_values_sent


def average_metrics(runs: list[SimulationMetrics]) -> SimulationMetrics:
    """Per-group average, as reported in Section 7.1."""
    if not runs:
        raise ValueError("no runs to average")
    total = SimulationMetrics()
    for run in runs:
        total.merge(run)
    n = len(runs)
    out = SimulationMetrics(
        timestamps=round(total.timestamps / n),
        update_events=round(total.update_events / n),
        result_changes=round(total.result_changes / n),
        messages_up=round(total.messages_up / n),
        messages_down=round(total.messages_down / n),
        packets_up=round(total.packets_up / n),
        packets_down=round(total.packets_down / n),
        server_cpu_seconds=total.server_cpu_seconds / n,
        index_node_accesses=round(total.index_node_accesses / n),
        index_queries=round(total.index_queries / n),
        tile_verifications=round(total.tile_verifications / n),
        region_values_sent=round(total.region_values_sent / n),
    )
    return out
