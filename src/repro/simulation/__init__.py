"""Client-server monitoring simulation (Section 3.1, Fig. 3).

The engine replays trajectory groups against the session-oriented
serving layer (:mod:`repro.service`).  Whenever a user leaves her safe
region the three-step protocol runs: (1) she reports her location;
(2) the server probes the other members; (3) the server notifies
everyone of the new optimal meeting point and their new safe regions.
Message and packet accounting follows the paper's model (576-byte MTU,
40-byte header, 67 doubles per packet).

``MPNServer`` and ``MultiGroupServer`` are retained as thin deprecated
shims over :class:`repro.service.MPNService`.
"""

from repro.simulation.messages import (
    VALUES_PER_PACKET,
    Message,
    MessageKind,
    packets_for_values,
)
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.policies import (
    Policy,
    PolicyKind,
    circle_policy,
    custom_policy,
    net_circle_policy,
    net_tile_policy,
    periodic_policy,
    tile_policy,
    tile_d_policy,
    tile_d_b_policy,
)
from repro.simulation.server import MPNServer, ServerResponse
from repro.simulation.client import SimClient
from repro.simulation.engine import (
    SafeRegionViolation,
    ServiceRunResult,
    run_groups,
    run_service,
    run_simulation,
)
from repro.simulation.multigroup import MultiGroupServer, GroupSession
from repro.simulation.adaptive import (
    AdaptiveAlphaController,
    AdaptiveConfig,
    run_adaptive_simulation,
)
from repro.simulation.cost_model import CostEstimate, estimate_costs

__all__ = [
    "VALUES_PER_PACKET",
    "Message",
    "MessageKind",
    "packets_for_values",
    "SimulationMetrics",
    "Policy",
    "PolicyKind",
    "circle_policy",
    "custom_policy",
    "net_circle_policy",
    "net_tile_policy",
    "periodic_policy",
    "tile_policy",
    "tile_d_policy",
    "tile_d_b_policy",
    "MPNServer",
    "ServerResponse",
    "SimClient",
    "SafeRegionViolation",
    "run_simulation",
    "run_groups",
    "run_service",
    "ServiceRunResult",
    "MultiGroupServer",
    "GroupSession",
    "AdaptiveAlphaController",
    "AdaptiveConfig",
    "run_adaptive_simulation",
    "CostEstimate",
    "estimate_costs",
]
