"""Cost model for monitoring runs (the paper's future work, Section 8).

"Also, we will develop a cost model for estimating the update
frequency, the communication cost, and the running time of our
methods."

The model calibrates itself from a handful of cheap *snapshot*
safe-region computations (no trajectory replay):

* **Update frequency.**  A user escapes a region of effective radius
  ``R`` after roughly ``R / v`` timestamps of directionally-persistent
  motion at speed ``v``; the group's first escape triggers the
  protocol, so the event rate is ``escape_factor * v / R`` with
  ``R = sqrt(area / pi)`` the equivalent-circle radius of the sampled
  regions and ``escape_factor`` a calibration constant (default 1,
  which matches ballistic motion re-centered on every update).
* **Communication cost.**  Exact per-event packet counts from the
  Section 7.1 message model, with region wire sizes sampled from the
  same snapshots.
* **Running time.**  The mean measured time of the sampled safe-region
  computations.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.region import Region
from repro.index.backend import SpatialIndex
from repro.mobility.trajectory import Trajectory
from repro.simulation.messages import (
    CIRCLE_VALUES,
    packets_for_values,
    POINT_VALUES,
)
from repro.simulation.policies import Policy


@dataclass(frozen=True)
class CostEstimate:
    """Predicted per-run metrics for one (policy, workload) pair."""

    update_frequency: float  # events per timestamp
    packets_per_event: float
    cpu_per_update: float  # seconds
    effective_radius: float
    mean_speed: float

    def predicted_events(self, timestamps: int) -> float:
        return self.update_frequency * timestamps

    def predicted_packets(self, timestamps: int) -> float:
        return self.predicted_events(timestamps) * self.packets_per_event

    def predicted_cpu_seconds(self, timestamps: int) -> float:
        return self.predicted_events(timestamps) * self.cpu_per_update


def _sample_group_positions(
    trajectories: Sequence[Trajectory], group_size: int, rng: random.Random
):
    chosen = rng.sample(range(len(trajectories)), group_size)
    t = rng.randrange(min(len(tr) for tr in trajectories))
    return [trajectories[k].at(t) for k in chosen]


def estimate_costs(
    policy: Policy,
    tree: SpatialIndex,
    trajectories: Sequence[Trajectory],
    group_size: int,
    n_samples: int = 20,
    escape_factor: float = 1.0,
    seed: int = 0,
) -> CostEstimate:
    """Calibrate the model from ``n_samples`` snapshot computations.

    The policy's safe-region strategy is resolved from the registry
    (:mod:`repro.service.strategies`), so any registered method — not
    just the paper's built-ins — can be estimated.
    """
    from repro.service.strategies import get_strategy

    strategy = get_strategy(policy)
    if strategy.periodic:
        m = group_size
        packets = m * (packets_for_values(2) + packets_for_values(POINT_VALUES))
        return CostEstimate(
            update_frequency=1.0,
            packets_per_event=float(packets),
            cpu_per_update=0.0,
            effective_radius=0.0,
            mean_speed=_mean_speed(trajectories),
        )
    if group_size > len(trajectories):
        raise ValueError("group_size exceeds available trajectories")
    rng = random.Random(seed)
    radii: list[float] = []
    region_values: list[int] = []
    cpu: list[float] = []
    for _ in range(n_samples):
        users = _sample_group_positions(trajectories, group_size, rng)
        start = time.perf_counter()
        result = strategy.compute(users, tree)
        cpu.append(time.perf_counter() - start)
        for region in result.regions:
            radius = _equivalent_radius(region)
            if radius is not None:
                radii.append(radius)
        region_values.extend(result.region_values)
    effective_radius = sum(radii) / len(radii) if radii else float("inf")
    speed = _mean_speed(trajectories)
    if effective_radius in (0.0, float("inf")):
        frequency = 1.0 if effective_radius == 0.0 else 0.0
    else:
        frequency = min(1.0, escape_factor * speed / effective_radius)
    m = group_size
    mean_region_values = (
        sum(region_values) / len(region_values) if region_values else CIRCLE_VALUES
    )
    packets_per_event = (
        1  # trigger location update
        + 2 * (m - 1)  # probe requests + replies
        + m * packets_for_values(POINT_VALUES + round(mean_region_values))
    )
    return CostEstimate(
        update_frequency=frequency,
        packets_per_event=float(packets_per_event),
        cpu_per_update=sum(cpu) / len(cpu),
        effective_radius=effective_radius,
        mean_speed=speed,
    )


def _equivalent_radius(region: Region) -> float | None:
    """Equivalent-circle radius of one safe region, if finite.

    Circles expose a radius directly; tile-style regions (iterables of
    tiles with rectangular extents) use the radius of the circle with
    the same total area.  Unbounded or degenerate regions return
    ``None`` and are excluded from calibration.
    """
    radius = getattr(region, "radius", None)
    if radius is not None:
        return None if radius == float("inf") else float(radius)
    try:
        area = sum(t.rect.area for t in region)
    except TypeError:
        return None
    if 0.0 < area < 1e30:
        return math.sqrt(area / math.pi)
    return None


def _mean_speed(trajectories: Sequence[Trajectory]) -> float:
    speeds = [t.average_speed() for t in trajectories]
    return sum(speeds) / len(speeds)
