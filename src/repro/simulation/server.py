"""The MPN server: safe-region computation behind one interface.

Given the current user locations (and optionally their predicted
headings) the server returns the optimal meeting point, a safe region
per user, and the wire cost of shipping each region — 3 values for a
circle, the compressed form of :mod:`repro.core.compression` for tile
regions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.circle_msr import circle_msr
from repro.core.compression import compress_region
from repro.core.tile_msr import tile_msr
from repro.core.types import SafeRegionStats
from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.index.backend import SpatialIndex
from repro.simulation.messages import CIRCLE_VALUES
from repro.simulation.policies import Policy, PolicyKind


@dataclass
class ServerResponse:
    """What the server sends back after a recomputation."""

    po: Point
    regions: list[Region]
    region_values: list[int]  # wire size per region, in doubles
    cpu_seconds: float
    stats: SafeRegionStats


class MPNServer:
    """Holds the POI R-tree and computes safe regions per the policy."""

    def __init__(self, tree: SpatialIndex, policy: Policy):
        if policy.kind is PolicyKind.PERIODIC:
            raise ValueError("the periodic baseline bypasses the server API")
        self.tree = tree
        self.policy = policy

    def compute(
        self,
        users: Sequence[Point],
        headings: Optional[Sequence[Optional[float]]] = None,
        thetas: Optional[Sequence[Optional[float]]] = None,
    ) -> ServerResponse:
        start = time.perf_counter()
        if self.policy.kind is PolicyKind.CIRCLE:
            result = circle_msr(users, self.tree, self.policy.objective)
            regions: list[Region] = list(result.circles)
            values = [CIRCLE_VALUES] * len(users)
            stats = result.stats
            po = result.po
        else:
            result = tile_msr(
                users, self.tree, self.policy.tile_config, headings, thetas
            )
            regions = list(result.regions)
            values = [compress_region(r).value_count for r in result.regions]
            stats = result.stats
            po = result.po
        cpu = time.perf_counter() - start
        return ServerResponse(
            po=po,
            regions=regions,
            region_values=values,
            cpu_seconds=cpu,
            stats=stats,
        )
