"""The single-group MPN server — now a shim over the strategy registry.

.. deprecated::
    New code should use :class:`repro.service.MPNService`: it serves
    many sessions, takes escape-report events, and handles POI churn.
    ``MPNServer`` remains as a thin compatibility wrapper for callers
    that want one stateless safe-region computation at a time.

The policy's strategy is resolved once, at construction, from
:mod:`repro.service.strategies`; there is no per-method branching here,
so strategies registered by extensions are served without touching this
module.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.types import SafeRegionStats
from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.index.backend import SpatialIndex
from repro.service.strategies import get_strategy
from repro.simulation.policies import Policy


@dataclass
class ServerResponse:
    """What the server sends back after a recomputation."""

    po: Point
    regions: list[Region]
    region_values: list[int]  # wire size per region, in doubles
    cpu_seconds: float
    stats: SafeRegionStats


class MPNServer:
    """Holds the POI R-tree and computes safe regions per the policy."""

    def __init__(self, tree: SpatialIndex, policy: Policy):
        warnings.warn(
            "MPNServer is deprecated; open sessions on repro.service."
            "MPNService (or serve envelopes through its dispatch()) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        strategy = get_strategy(policy)
        if strategy.periodic:
            raise ValueError("the periodic baseline bypasses the server API")
        self.tree = tree
        self.policy = policy
        self.strategy = strategy

    def compute(
        self,
        users: Sequence[Point],
        headings: Optional[Sequence[Optional[float]]] = None,
        thetas: Optional[Sequence[Optional[float]]] = None,
    ) -> ServerResponse:
        start = time.perf_counter()
        result = self.strategy.compute(users, self.tree, headings, thetas)
        cpu = time.perf_counter() - start
        return ServerResponse(
            po=result.po,
            regions=list(result.regions),
            region_values=list(result.region_values),
            cpu_seconds=cpu,
            stats=result.stats,
        )
