"""Brinkhoff-substitute generator: network-constrained motion.

Brinkhoff's generator (the paper's Oldenburg workload, ref. [27])
produces objects that travel the road network of Oldenburg along
shortest paths with class-dependent speeds.  We reproduce exactly that
behaviour on a synthetic road network: a perturbed grid graph with a
fraction of edges removed (keeping it connected), which yields the
irregular block structure of a real city map.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import networkx as nx

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.trajectory import Trajectory


@dataclass(frozen=True)
class NetworkParams:
    """Tuning of the road network and the object classes."""

    grid_size: int = 12  # grid_size x grid_size intersections
    perturbation: float = 0.25  # relative node displacement
    drop_fraction: float = 0.15  # fraction of edges removed
    speed_classes: tuple[float, ...] = (2.5, 5.0, 10.0)  # slow/medium/fast


def build_road_network(
    world: Rect, params: NetworkParams | None = None, seed: int = 11
) -> nx.Graph:
    """A connected planar-ish road graph with ``pos`` node attributes."""
    if params is None:
        params = NetworkParams()
    rng = random.Random(seed)
    n = params.grid_size
    if n < 2:
        raise ValueError("grid_size must be >= 2")
    graph = nx.grid_2d_graph(n, n)
    dx = world.width / (n - 1)
    dy = world.height / (n - 1)
    for (i, j) in graph.nodes:
        px = world.x_lo + i * dx + rng.uniform(-1, 1) * params.perturbation * dx
        py = world.y_lo + j * dy + rng.uniform(-1, 1) * params.perturbation * dy
        px = min(max(px, world.x_lo), world.x_hi)
        py = min(max(py, world.y_lo), world.y_hi)
        graph.nodes[(i, j)]["pos"] = Point(px, py)
    # Remove a fraction of edges without disconnecting the graph.
    edges = list(graph.edges)
    rng.shuffle(edges)
    to_drop = int(len(edges) * params.drop_fraction)
    for edge in edges:
        if to_drop == 0:
            break
        graph.remove_edge(*edge)
        if nx.is_connected(graph):
            to_drop -= 1
        else:
            graph.add_edge(*edge)
    for a, b in graph.edges:
        graph.edges[a, b]["length"] = graph.nodes[a]["pos"].dist(
            graph.nodes[b]["pos"]
        )
    return graph


def _walk_path(
    graph: nx.Graph, path: list, speed: float, emit, budget: list
) -> object:
    """Walk a node path at ``speed`` per timestamp, emitting locations.

    Returns the final position.  ``budget[0]`` holds the number of
    locations still needed; ``emit`` appends to the trajectory.
    """
    pos = graph.nodes[path[0]]["pos"]
    for nxt in path[1:]:
        target = graph.nodes[nxt]["pos"]
        while budget[0] > 0:
            gap = pos.dist(target)
            if gap <= speed:
                pos = target
                break
            angle = math.atan2(target.y - pos.y, target.x - pos.x)
            pos = Point(pos.x + speed * math.cos(angle), pos.y + speed * math.sin(angle))
            emit(pos)
            budget[0] -= 1
        if budget[0] <= 0:
            break
        emit(pos)
        budget[0] -= 1
        if budget[0] <= 0:
            break
    return pos


def generate_network_trajectory(
    graph: nx.Graph,
    n_timestamps: int,
    speed: float,
    rng: random.Random,
) -> Trajectory:
    """One object: repeated shortest-path trips between random nodes."""
    nodes = list(graph.nodes)
    current = rng.choice(nodes)
    points = [graph.nodes[current]["pos"]]
    budget = [n_timestamps - 1]
    while budget[0] > 0:
        dest = rng.choice(nodes)
        if dest == current:
            continue
        path = nx.shortest_path(graph, current, dest, weight="length")
        _walk_path(graph, path, speed, points.append, budget)
        current = dest
    return Trajectory(tuple(points[:n_timestamps]))


def brinkhoff_like(
    n_trajectories: int,
    n_timestamps: int,
    world: Rect,
    params: NetworkParams | None = None,
    seed: int = 11,
) -> list[Trajectory]:
    """A trajectory set mirroring the paper's Oldenburg workload shape."""
    if params is None:
        params = NetworkParams()
    graph = build_road_network(world, params, seed)
    rng = random.Random(seed + 1)
    out = []
    for k in range(n_trajectories):
        speed = params.speed_classes[k % len(params.speed_classes)]
        out.append(generate_network_trajectory(graph, n_timestamps, speed, rng))
    return out
