"""Direction prediction for the directed tile ordering (Section 5.2).

"Existing studies [26] show that the travel direction of a user in the
near future has a limited angle deviation theta from his current one;
theta is learned from the user's recent travel directions."  This
module maintains a sliding window of recent headings per user and
reports (predicted_heading, theta).
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.tiles import angle_diff
from repro.geometry.point import Point


class DirectionPredictor:
    """Sliding-window heading tracker for one user."""

    def __init__(
        self,
        window: int = 10,
        theta_min: float = math.pi / 6.0,
        theta_max: float = math.pi,
    ):
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < theta_min <= theta_max <= math.pi:
            raise ValueError("need 0 < theta_min <= theta_max <= pi")
        self.window = window
        self.theta_min = theta_min
        self.theta_max = theta_max
        self._positions: deque[Point] = deque(maxlen=window + 1)

    def observe(self, position: Point) -> None:
        """Record the user's location at the next timestamp."""
        self._positions.append(position)

    def _headings(self) -> list[float]:
        out = []
        pts = list(self._positions)
        for a, b in zip(pts, pts[1:]):
            if a != b:
                out.append(math.atan2(b.y - a.y, b.x - a.x))
        return out

    @property
    def heading(self) -> float | None:
        """Predicted near-future heading: the most recent one observed."""
        headings = self._headings()
        return headings[-1] if headings else None

    @property
    def theta(self) -> float:
        """Learned deviation bound: the max recent deviation, clamped."""
        headings = self._headings()
        if len(headings) < 2:
            return self.theta_max
        last = headings[-1]
        deviation = max(angle_diff(h, last) for h in headings[:-1])
        return min(max(deviation, self.theta_min), self.theta_max)

    def reset(self) -> None:
        self._positions.clear()
