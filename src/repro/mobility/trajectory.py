"""Trajectories: per-timestamp location sequences.

A trajectory holds exactly one location per timestamp (the paper's
trajectory sets have "above 10,000 timestamps" each).  The speed-
scaling transform follows Section 7.2 verbatim: for speed ``x * V`` we
take the trajectory prefix covering the first ``x`` fraction of
timestamps and resample the full number of locations uniformly on those
segments — consistent trajectories, slower traversal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True)
class Trajectory:
    """An immutable sequence of locations, one per timestamp."""

    points: tuple[Point, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("trajectory must contain at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, t: int) -> Point:
        return self.points[t]

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def at(self, t: int) -> Point:
        """Location at timestamp ``t``; clamps past the end."""
        if t < 0:
            raise IndexError("negative timestamp")
        if t >= len(self.points):
            return self.points[-1]
        return self.points[t]

    def total_length(self) -> float:
        return sum(
            self.points[k].dist(self.points[k + 1])
            for k in range(len(self.points) - 1)
        )

    def average_speed(self) -> float:
        """Distance covered per timestamp."""
        if len(self.points) < 2:
            return 0.0
        return self.total_length() / (len(self.points) - 1)

    def heading_at(self, t: int) -> float | None:
        """Travel direction entering timestamp ``t`` (None if static)."""
        if t <= 0 or t >= len(self.points):
            t = max(1, min(t, len(self.points) - 1))
        prev = self.points[t - 1]
        cur = self.points[t]
        if prev == cur:
            return None
        return math.atan2(cur.y - prev.y, cur.x - prev.x)

    def prefix(self, n: int) -> "Trajectory":
        if n < 1:
            raise ValueError("prefix length must be >= 1")
        return Trajectory(self.points[:n])


def resample_uniform(points: Sequence[Point], n: int) -> Trajectory:
    """``n`` locations uniformly spaced in *time* along the polyline.

    "Uniformly on those segments" (Section 7.2): parameterize the
    polyline by its original timestamps and sample ``n`` equally spaced
    parameter values, interpolating linearly inside segments.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    if len(points) == 1:
        return Trajectory(tuple(points) * n)
    span = len(points) - 1
    out = []
    for k in range(n):
        pos = (k / (n - 1)) * span if n > 1 else 0.0
        idx = min(int(pos), span - 1)
        frac = pos - idx
        a = points[idx]
        b = points[idx + 1]
        out.append(Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)))
    return Trajectory(tuple(out))


def scale_speed(traj: Trajectory, fraction: float, n_samples: int | None = None) -> Trajectory:
    """The paper's speed transform: prefix by ``fraction``, resample.

    ``fraction = 1.0`` returns an equivalent trajectory at full speed;
    ``fraction = 0.25`` travels only the first quarter of the route in
    the same number of timestamps (one quarter the speed).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    n = n_samples if n_samples is not None else len(traj)
    keep = max(2, int(round(len(traj) * fraction)))
    keep = min(keep, len(traj))
    return resample_uniform(traj.points[:keep], n)
