"""Moving-object substrate: trajectories and their generators.

The paper evaluates on two trajectory sets (Section 7.1): GeoLife (real
taxi traces) and Oldenburg (Brinkhoff's network-based generator).
Neither asset ships with this reproduction, so we provide synthetic
equivalents that exercise the same code paths:

* :func:`repro.mobility.random_waypoint.geolife_like` — destination-
  directed waypoint motion with speed noise and pauses (taxi-trace
  stand-in);
* :func:`repro.mobility.network.brinkhoff_like` — shortest-path motion
  on a synthetic road network (Brinkhoff stand-in).

Both emit :class:`~repro.mobility.trajectory.Trajectory` objects with
one location per timestamp, plus the speed-scaling transform the paper
uses for its "effect of user speed" experiment (Section 7.2).
"""

from repro.mobility.trajectory import Trajectory, scale_speed
from repro.mobility.random_waypoint import geolife_like
from repro.mobility.network import build_road_network, brinkhoff_like
from repro.mobility.converge import ConvergeParams, generate_converge_trajectory
from repro.mobility.direction import DirectionPredictor

__all__ = [
    "Trajectory",
    "scale_speed",
    "geolife_like",
    "build_road_network",
    "brinkhoff_like",
    "ConvergeParams",
    "generate_converge_trajectory",
    "DirectionPredictor",
]
