"""GeoLife-substitute generator: destination-directed waypoint motion.

Real taxi traces (the paper's GeoLife set) exhibit three properties the
MPN algorithms are sensitive to: sustained heading persistence between
destinations (exploited by the directed tile ordering), variable speed,
and occasional stops.  This generator reproduces all three with
explicit knobs, on a bounded world rectangle.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.trajectory import Trajectory


@dataclass(frozen=True)
class WaypointParams:
    """Tuning of the taxi-like motion model."""

    speed: float = 5.0  # nominal distance per timestamp (the paper's V)
    speed_jitter: float = 0.35  # relative std-dev of per-step speed noise
    pause_probability: float = 0.02  # chance to idle at a reached waypoint
    pause_max_steps: int = 20
    heading_jitter: float = 0.08  # radians of per-step direction noise


def _next_destination(world: Rect, rng: random.Random) -> Point:
    return world.sample(rng)


def generate_waypoint_trajectory(
    world: Rect,
    n_timestamps: int,
    params: WaypointParams,
    rng: random.Random,
    start: Point | None = None,
) -> Trajectory:
    """One trajectory of ``n_timestamps`` locations."""
    if n_timestamps < 1:
        raise ValueError("need at least one timestamp")
    pos = start if start is not None else world.sample(rng)
    dest = _next_destination(world, rng)
    points = [pos]
    pause_left = 0
    while len(points) < n_timestamps:
        if pause_left > 0:
            pause_left -= 1
            points.append(pos)
            continue
        to_dest = pos.dist(dest)
        step = max(0.0, rng.gauss(params.speed, params.speed * params.speed_jitter))
        if to_dest <= step:
            pos = dest
            dest = _next_destination(world, rng)
            if rng.random() < params.pause_probability * 10:
                pause_left = rng.randint(1, params.pause_max_steps)
        else:
            angle = math.atan2(dest.y - pos.y, dest.x - pos.x)
            angle += rng.gauss(0.0, params.heading_jitter)
            pos = Point(
                pos.x + step * math.cos(angle), pos.y + step * math.sin(angle)
            )
            # Keep inside the world.
            pos = Point(
                min(max(pos.x, world.x_lo), world.x_hi),
                min(max(pos.y, world.y_lo), world.y_hi),
            )
        points.append(pos)
    return Trajectory(tuple(points[:n_timestamps]))


def geolife_like(
    n_trajectories: int,
    n_timestamps: int,
    world: Rect,
    params: WaypointParams | None = None,
    seed: int = 7,
) -> list[Trajectory]:
    """A trajectory set mirroring the paper's GeoLife workload shape.

    The paper uses 60 trajectories with more than 10,000 timestamps;
    callers choose the scale (see :mod:`repro.experiments.scales`).
    """
    if params is None:
        params = WaypointParams()
    rng = random.Random(seed)
    return [
        generate_waypoint_trajectory(world, n_timestamps, params, rng)
        for _ in range(n_trajectories)
    ]
