"""Event-crowd motion: destination-directed convergence on a venue.

The third crowd shape the scenario engine needs (alongside the taxi-like
waypoint wander and shortest-path network motion): a spectator heading
for a stadium walks *toward* it with mild heading noise, arrives, and
then mills around the venue — short random steps inside a small radius —
for the rest of the trace.  The milling phase is what keeps a converged
crowd generating occasional safe-region escapes instead of freezing the
whole cohort on one point.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.trajectory import Trajectory


@dataclass(frozen=True)
class ConvergeParams:
    """Tuning of the crowd-convergence motion model."""

    speed: float = 5.0  # nominal approach distance per timestamp
    speed_jitter: float = 0.25  # relative std-dev of per-step speed noise
    heading_jitter: float = 0.12  # radians of per-step direction noise
    mill_radius: float = 25.0  # how far arrived members drift from the venue
    mill_step: float = 3.0  # nominal milling distance per timestamp


def _clamp(pos: Point, world: Rect) -> Point:
    return Point(
        min(max(pos.x, world.x_lo), world.x_hi),
        min(max(pos.y, world.y_lo), world.y_hi),
    )


def generate_converge_trajectory(
    world: Rect,
    n_timestamps: int,
    venue: Point,
    params: ConvergeParams,
    rng: random.Random,
    start: Point | None = None,
) -> Trajectory:
    """One trajectory converging on ``venue`` then milling around it."""
    if n_timestamps < 1:
        raise ValueError("need at least one timestamp")
    pos = start if start is not None else world.sample(rng)
    points = [pos]
    arrived = False
    while len(points) < n_timestamps:
        if not arrived:
            to_venue = pos.dist(venue)
            step = max(
                0.0, rng.gauss(params.speed, params.speed * params.speed_jitter)
            )
            if to_venue <= max(step, params.mill_radius):
                arrived = True
                continue
            angle = math.atan2(venue.y - pos.y, venue.x - pos.x)
            angle += rng.gauss(0.0, params.heading_jitter)
            pos = _clamp(
                Point(
                    pos.x + step * math.cos(angle),
                    pos.y + step * math.sin(angle),
                ),
                world,
            )
        else:
            # Milling: a short step in a random direction, pulled back
            # inside the venue radius if it strays.
            angle = rng.uniform(-math.pi, math.pi)
            step = max(0.0, rng.gauss(params.mill_step, params.mill_step * 0.5))
            cand = Point(
                pos.x + step * math.cos(angle), pos.y + step * math.sin(angle)
            )
            if cand.dist(venue) > params.mill_radius:
                pull = math.atan2(venue.y - cand.y, venue.x - cand.x)
                cand = Point(
                    cand.x + step * math.cos(pull), cand.y + step * math.sin(pull)
                )
            pos = _clamp(cand, world)
        points.append(pos)
    return Trajectory(tuple(points[:n_timestamps]))
