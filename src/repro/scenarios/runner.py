"""Stream a compiled scenario through any ``ServiceBackend``.

The runner owns the client side of the fleet: it consumes the
compiler's kinematic tick stream, keeps each live session's assigned
safe regions, detects escapes client-side (the first escaped member of
a group reports, exactly like :func:`repro.simulation.run_service`'s
clients), and drives the backend with the batched dispatch surface —
one ``report_many`` wave per tick, one ``update_pois`` batch per churn
event.  Because everything the backend sees is derived from the
backend-independent stream plus the backend's own notifications, any
two bit-identical backends produce bit-identical runs.

Exactness spot-checks: a seeded sample of sessions is recorded (their
opens, their report events with the probe states that were shipped,
every POI churn batch) and replayed sequentially against a **fresh
unsharded** :class:`~repro.service.MPNService` built from the same
space spec.  The replay must reproduce the sampled sessions'
notification sequences and integer metric counters bit-identically —
the fleet-wide guarantee, checked on a subset cheap enough to run at
10^5 sessions.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.scenarios.compiler import (
    KEY_SPOT_CHECK,
    CompiledScenario,
    compile_spec,
    derive_rng,
)
from repro.scenarios.recorder import ScenarioRecorder
from repro.scenarios.spec import ScenarioSpec, resolve_policy
from repro.service.api import encode_position
from repro.service.messages import MemberState, ReportEvent
from repro.service.regions import encode_region

#: Every integer counter on SimulationMetrics — everything but
#: wall-clock seconds, which never replay identically.
COUNTER_FIELDS = (
    "timestamps",
    "update_events",
    "result_changes",
    "messages_up",
    "messages_down",
    "packets_up",
    "packets_down",
    "index_node_accesses",
    "index_queries",
    "tile_verifications",
    "region_values_sent",
)


def counters(metrics) -> dict[str, int]:
    return {name: getattr(metrics, name) for name in COUNTER_FIELDS}


def notification_key(notification) -> tuple:
    """Structural identity of a notification (regions lack ``__eq__``)."""
    return (
        notification.session_id,
        json.dumps(encode_position(notification.po), sort_keys=True),
        tuple(
            json.dumps(encode_region(region), sort_keys=True)
            for region in notification.regions
        ),
        tuple(notification.region_values),
        notification.cause,
    )


@dataclass
class SpotCheckReport:
    """Outcome of the sampled-replay exactness check."""

    sampled_sessions: int = 0
    compared_notifications: int = 0
    notification_mismatches: int = 0
    counter_mismatches: int = 0
    mismatched_sessions: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.notification_mismatches == 0 and self.counter_mismatches == 0
        )


@dataclass
class ScenarioResult:
    """What a scenario run produced, shaped for gating and recording."""

    spec_name: str
    ticks: int
    total_opened: int
    peak_live: int
    total_wave_events: int
    total_notifications: int
    total_churn_notifications: int
    elapsed_seconds: float
    spot_check: Optional[SpotCheckReport]
    summary: Optional[dict]
    notification_log: Optional[list] = None  # [(tick, key), ...] opt-in


class _Session:
    """The runner's client-side view of one live session."""

    __slots__ = ("positions", "regions", "sampled")

    def __init__(self, positions, regions, sampled: bool):
        self.positions = list(positions)
        self.regions = regions
        self.sampled = sampled


class _SpotCheck:
    """Records the sampled subset during the run; replays it after."""

    def __init__(self, spec: ScenarioSpec, fraction: float, cap: int):
        self.spec = spec
        self.fraction = fraction
        self.cap = cap
        self._rng = derive_rng(spec.seed, KEY_SPOT_CHECK)
        self.sampled: set[int] = set()
        self.log: list[tuple] = []
        self.live_keys: dict[int, list[tuple]] = {}
        self.live_counters: dict[int, dict[str, int]] = {}

    def admit(self, session_id: int) -> bool:
        """Decide at open time whether this session is sampled."""
        if self.fraction <= 0.0:
            return False
        keep = (
            len(self.sampled) < self.cap
            and self._rng.random() < self.fraction
        )
        if keep:
            self.sampled.add(session_id)
            self.live_keys[session_id] = []
        return keep

    def replay(self) -> SpotCheckReport:
        """Drive a fresh unsharded service through the recorded log."""
        from repro.service.service import MPNService

        report = SpotCheckReport(sampled_sessions=len(self.sampled))
        service = MPNService(self.spec.space())
        replay_keys: dict[int, list[tuple]] = {
            sid: [] for sid in self.sampled
        }
        replay_counters: dict[int, dict[str, int]] = {}
        for entry in self.log:
            op = entry[0]
            if op == "churn":
                _, adds, removes = entry
                for note in service.update_pois(adds=adds, removes=removes):
                    replay_keys[note.session_id].append(
                        notification_key(note)
                    )
            elif op == "open":
                _, sid, positions, policy_name = entry
                handle = service.open_session(
                    [MemberState(p) for p in positions],
                    resolve_policy(policy_name),
                    session_id=sid,
                )
                replay_keys[sid].append(notification_key(handle.notification))
            elif op == "report":
                _, sid, member_id, position, probes = entry
                note = service.report(
                    sid, member_id, position, probes=probes
                )
                if note is not None:
                    replay_keys[sid].append(notification_key(note))
            else:  # "close"
                _, sid = entry
                replay_counters[sid] = counters(service.session_metrics(sid))
                service.close_session(sid)
        for sid in service.session_ids():
            replay_counters[sid] = counters(service.session_metrics(sid))
        for sid in sorted(self.sampled):
            want = self.live_keys.get(sid, [])
            got = replay_keys.get(sid, [])
            report.compared_notifications += len(want)
            clean = True
            if want != got:
                report.notification_mismatches += 1
                clean = False
            if self.live_counters.get(sid) != replay_counters.get(sid):
                report.counter_mismatches += 1
                clean = False
            if not clean:
                report.mismatched_sessions.append(sid)
        return report


def run_scenario(
    spec_or_compiled,
    backend,
    *,
    recorder: Optional[ScenarioRecorder] = None,
    spot_check_fraction: float = 0.0,
    spot_check_cap: int = 64,
    collect_notifications: bool = False,
    escape_eps: float = 1e-9,
) -> ScenarioResult:
    """Stream the scenario through ``backend``; return the run's result.

    ``spot_check_fraction`` > 0 samples that fraction of sessions (up
    to ``spot_check_cap``) for the replay exactness check.
    ``collect_notifications`` keeps the full ``(tick, key)`` log —
    equivalence tests only; it defeats the memory bound at fleet scale.
    """
    compiled: CompiledScenario = (
        spec_or_compiled
        if isinstance(spec_or_compiled, CompiledScenario)
        else compile_spec(spec_or_compiled)
    )
    spec = compiled.spec
    spot = (
        _SpotCheck(spec, spot_check_fraction, spot_check_cap)
        if spot_check_fraction > 0.0
        else None
    )
    sessions: dict[int, _Session] = {}
    notification_log: Optional[list] = [] if collect_notifications else None
    total_waves = 0
    total_notes = 0
    total_churn_notes = 0
    started = time.perf_counter()

    def timed(stats, fn, *args, **kwargs):
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        if stats is not None:
            stats.record_call(time.perf_counter() - t0)
        return out

    def deliver(note, tick: int, churn: bool) -> None:
        nonlocal total_notes, total_churn_notes
        state = sessions[note.session_id]
        state.regions = note.regions
        if churn:
            total_churn_notes += 1
        else:
            total_notes += 1
        key = None
        if spot is not None and state.sampled:
            key = notification_key(note)
            spot.live_keys[note.session_id].append(key)
        if notification_log is not None:
            notification_log.append(
                (tick, key if key is not None else notification_key(note))
            )

    for events in compiled.ticks():
        stats = recorder.begin_tick(events.tick) if recorder else None
        notes_before = total_notes
        churn_before = total_churn_notes

        # 1. POI churn: the world changes under every live session.
        if events.churn is not None:
            adds, removes = events.churn
            if spot is not None:
                spot.log.append(("churn", adds, removes))
            for note in timed(
                stats, backend.update_pois, adds=adds, removes=removes
            ):
                deliver(note, events.tick, churn=True)

        # 2. Group formation: open this tick's new sessions.
        for ev in events.opens:
            policy = resolve_policy(ev.policy)
            members = [MemberState(p) for p in ev.positions]
            sampled = spot.admit(ev.session_id) if spot is not None else False
            if sampled:
                spot.log.append(
                    ("open", ev.session_id, ev.positions, ev.policy)
                )
            handle = timed(stats, backend.open_session, members, policy)
            if handle.session_id != ev.session_id:
                raise RuntimeError(
                    f"backend numbered session {handle.session_id}, "
                    f"schedule predicted {ev.session_id} — the backend is "
                    "not fresh (sessions were opened outside the scenario)"
                )
            sessions[ev.session_id] = _Session(
                ev.positions, handle.notification.regions, sampled
            )
            deliver(handle.notification, events.tick, churn=False)

        if stats:
            stats.opens = len(events.opens)
            stats.live = len(sessions)

        # 3. The move wave: first escaped member of each group reports.
        wave: list[ReportEvent] = []
        for move in events.moves:
            state = sessions[move.session_id]
            state.positions = list(move.positions)
            trigger = None
            for m, position in enumerate(move.positions):
                if not state.regions[m].contains_point(position, escape_eps):
                    trigger = m
                    break
            if trigger is None:
                continue
            probes = tuple(
                (j, MemberState(move.positions[j]))
                for j in range(len(move.positions))
                if j != trigger
            )
            event = ReportEvent(
                session_id=move.session_id,
                member_id=trigger,
                state=MemberState(move.positions[trigger]),
                probes=probes,
            )
            wave.append(event)
            if spot is not None and state.sampled:
                spot.log.append(
                    (
                        "report",
                        move.session_id,
                        trigger,
                        move.positions[trigger],
                        probes,
                    )
                )
        if wave:
            wave_started = time.perf_counter()
            notes = timed(stats, backend.report_many, wave)
            if stats:
                stats.wave_ms = (time.perf_counter() - wave_started) * 1000.0
            for note in notes:
                if note is not None:
                    deliver(note, events.tick, churn=False)
        total_waves += len(wave)
        if stats:
            stats.wave_events = len(wave)

        # 4. Group dissolution: close this tick's ending sessions.
        for sid in events.closes:
            state = sessions.pop(sid)
            if spot is not None and state.sampled:
                spot.live_counters[sid] = counters(
                    backend.session_metrics(sid)
                )
                spot.log.append(("close", sid))
            timed(stats, backend.close_session, sid)
        if stats:
            stats.closes = len(events.closes)
            stats.notifications = total_notes - notes_before
            stats.churn_notifications = total_churn_notes - churn_before
            recorder.end_tick()

    # Sessions outliving the horizon stay open; sample their counters.
    if spot is not None:
        for sid, state in sorted(sessions.items()):
            if state.sampled:
                spot.live_counters[sid] = counters(
                    backend.session_metrics(sid)
                )

    elapsed = time.perf_counter() - started
    return ScenarioResult(
        spec_name=spec.name,
        ticks=spec.ticks,
        total_opened=compiled.total_opened,
        peak_live=compiled.peak_live,
        total_wave_events=total_waves,
        total_notifications=total_notes,
        total_churn_notifications=total_churn_notes,
        elapsed_seconds=elapsed,
        spot_check=spot.replay() if spot is not None else None,
        summary=recorder.summary() if recorder else None,
        notification_log=notification_log,
    )
