"""Declarative scenario specs: the population a workload describes.

A :class:`ScenarioSpec` is a frozen, picklable description of a
synthetic population — cohorts of moving groups, the space they live
in, their per-tick rules (arrival/departure schedules, policy mix, POI
churn) — that :mod:`repro.scenarios.compiler` turns into a lazy,
deterministic per-tick event stream.  Everything here is data: no
trajectory, session, or index is materialized until the compiled
stream is consumed.

The space specs double as the zero-argument space *factories* every
backend needs — :class:`~repro.transport.worker.ProcessCluster` workers
are spawned and call the factory in their own process, the compiler
calls it for trajectory planning, and the runner's spot-check replay
calls it for the fresh reference service.  A frozen dataclass with a
``__call__`` pickles; a lambda closing over a POI list does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.simulation.policies import (
    Policy,
    circle_policy,
    net_circle_policy,
    net_tile_policy,
    tile_policy,
)

#: Cohort kinds served on each space kind.  Commuters need roads;
#: delivery vans run the waypoint model, which needs an open plane.
COHORT_KINDS_BY_SPACE = {
    "euclidean": ("wanderer", "delivery", "event_crowd"),
    "network": ("commuter", "event_crowd", "wanderer"),
}

#: The built-in policy mix entries, by space kind.
POLICY_FACTORIES = {
    "circle": circle_policy,
    "tile": tile_policy,
    "net_circle": net_circle_policy,
    "net_tile": net_tile_policy,
}
EUCLIDEAN_POLICIES = ("circle", "tile")
NETWORK_POLICIES = ("net_circle", "net_tile")


def resolve_policy(name: str) -> Policy:
    """The :class:`Policy` object a spec's policy-mix entry names."""
    try:
        return POLICY_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICY_FACTORIES)}"
        ) from None


@dataclass(frozen=True)
class EuclideanSpaceSpec:
    """A bounded plane with seeded clustered POIs.

    ``__call__`` builds the :class:`~repro.space.Space` — picklable, so
    it serves directly as a :class:`ProcessCluster` worker factory.
    """

    world: tuple[float, float, float, float] = (0.0, 0.0, 10000.0, 10000.0)
    n_pois: int = 500
    poi_seed: int = 7
    kind: str = "euclidean"

    def __call__(self):
        from repro.space import as_space
        from repro.workloads.poi import build_poi_tree

        return as_space(build_poi_tree(self.initial_pois()))

    def world_rect(self):
        from repro.geometry.rect import Rect

        x0, y0, x1, y1 = self.world
        return Rect(x0, y0, x1, y1)

    def initial_pois(self) -> list:
        """The seeded POI set every replica starts from."""
        from repro.workloads.poi import clustered_pois

        return clustered_pois(self.n_pois, self.world_rect(), seed=self.poi_seed)

    def validate(self) -> None:
        x0, y0, x1, y1 = self.world
        if not (x1 > x0 and y1 > y0):
            raise ValueError(f"degenerate world rectangle {self.world}")
        if self.n_pois < 1:
            raise ValueError("need at least one POI")


@dataclass(frozen=True)
class CityGraphSpaceSpec:
    """A seeded road-like city graph with POI nodes.

    Wraps :func:`repro.workloads.citygraph.city_network_space`; the
    same caveats as :class:`EuclideanSpaceSpec` — picklable factory,
    deterministic replicas-by-construction.
    """

    grid_size: int = 24
    graph_seed: int = 17
    n_pois: int = 60
    poi_seed: int = 23
    kind: str = "network"

    def __call__(self):
        from repro.space.network import NetworkPOISpace

        net = self.network_space()
        return NetworkPOISpace(net, self.initial_pois(net.graph))

    def network_space(self):
        from repro.workloads.citygraph import city_network_space

        return city_network_space(grid_size=self.grid_size, seed=self.graph_seed)

    def initial_pois(self, graph=None) -> list:
        from repro.workloads.citygraph import city_poi_nodes

        if graph is None:
            graph = self.network_space().graph
        return city_poi_nodes(graph, self.n_pois, seed=self.poi_seed)

    def validate(self) -> None:
        if self.grid_size < 4:
            raise ValueError("grid_size must be >= 4")
        if self.n_pois < 1:
            raise ValueError("need at least one POI")


SpaceSpec = Union[EuclideanSpaceSpec, CityGraphSpaceSpec]


@dataclass(frozen=True)
class CohortSpec:
    """One population segment: who they are, when they exist, how they move.

    ``sessions`` groups arrive uniformly over ticks ``[first_tick,
    last_tick]`` (group *formation* schedule) and each dissolves
    ``lifetime`` ticks after it opened (group *dissolution*); both are
    deterministic functions of the spec, never sampled.  ``policies``
    is the cohort's policy mix — session ``k`` opens under
    ``policies[k % len(policies)]``.
    """

    name: str
    kind: str  # "commuter" | "event_crowd" | "delivery" | "wanderer"
    sessions: int
    group_size: int = 3
    first_tick: int = 0
    last_tick: int = 0
    lifetime: int = 10
    speed: float = 5.0
    spawn_spread: float = 60.0  # start-position spread inside one group
    policies: tuple[str, ...] = ("circle",)

    def validate(self, space: SpaceSpec, ticks: int) -> None:
        allowed = COHORT_KINDS_BY_SPACE[space.kind]
        if self.kind not in allowed:
            raise ValueError(
                f"cohort {self.name!r}: kind {self.kind!r} cannot run on a "
                f"{space.kind} space (allowed: {allowed})"
            )
        if self.sessions < 1:
            raise ValueError(f"cohort {self.name!r}: needs at least one session")
        if self.group_size < 1:
            raise ValueError(f"cohort {self.name!r}: group_size must be >= 1")
        if not 0 <= self.first_tick <= self.last_tick < ticks:
            raise ValueError(
                f"cohort {self.name!r}: arrival window "
                f"[{self.first_tick}, {self.last_tick}] outside 0..{ticks - 1}"
            )
        if self.lifetime < 1:
            raise ValueError(f"cohort {self.name!r}: lifetime must be >= 1")
        if self.speed <= 0:
            raise ValueError(f"cohort {self.name!r}: speed must be > 0")
        if not self.policies:
            raise ValueError(f"cohort {self.name!r}: empty policy mix")
        wanted = (
            NETWORK_POLICIES if space.kind == "network" else EUCLIDEAN_POLICIES
        )
        for name in self.policies:
            resolve_policy(name)
            if name not in wanted:
                raise ValueError(
                    f"cohort {self.name!r}: policy {name!r} does not serve a "
                    f"{space.kind} space (use one of {wanted})"
                )

    def open_tick(self, k: int) -> int:
        """When session ``k`` of this cohort forms (uniform arrival)."""
        span = self.last_tick - self.first_tick
        if self.sessions == 1:
            return self.first_tick
        return self.first_tick + (k * span) // (self.sessions - 1)


@dataclass(frozen=True)
class PoiChurnSpec:
    """The POI churn schedule: every ``every`` ticks, one batch.

    Adds are fresh seeded positions (points on a plane, non-POI nodes
    on a graph); removes are sampled from the POIs currently present,
    so a schedule can never remove a POI twice.
    """

    every: int = 10
    adds: int = 4
    removes: int = 2

    def validate(self) -> None:
        if self.every < 1:
            raise ValueError("churn period must be >= 1 tick")
        if self.adds < 0 or self.removes < 0:
            raise ValueError("churn batch sizes must be >= 0")
        if self.adds == 0 and self.removes == 0:
            raise ValueError("churn schedule with empty batches")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario: space + cohorts + rules."""

    name: str
    seed: int
    ticks: int
    space: SpaceSpec
    cohorts: tuple[CohortSpec, ...] = ()
    poi_churn: PoiChurnSpec | None = None
    description: str = field(default="", compare=False)

    def validate(self) -> "ScenarioSpec":
        if self.ticks < 1:
            raise ValueError("scenario needs at least one tick")
        if not self.cohorts:
            raise ValueError("scenario needs at least one cohort")
        names = [c.name for c in self.cohorts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cohort names in {names}")
        self.space.validate()
        for cohort in self.cohorts:
            cohort.validate(self.space, self.ticks)
        if self.poi_churn is not None:
            self.poi_churn.validate()
        return self

    def total_sessions(self) -> int:
        return sum(c.sessions for c in self.cohorts)
