"""Per-tick measurements of a scenario run.

The recorder sits between the runner and the backend: the runner times
every dispatch-layer call it makes (opens, the tick's ``report_many``
wave, churn batches, closes) and hands the recorder one
:class:`TickStats` worth of numbers per tick.  At the end,
:meth:`ScenarioRecorder.summary` rolls the series into the shape
``benchmarks/record_bench.py --suite fleet`` appends to
``BENCH_fleet.json``: pooled and per-tick p50/p99 dispatch latency,
notification counts by cause, the per-tick notification distribution,
and per-shard load via :func:`repro.cluster.load.collect_shard_loads`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.load import collect_shard_loads


def quantiles_ms(seconds: list[float]) -> tuple[float, float]:
    """(p50, p99) of a latency sample, in milliseconds."""
    if not seconds:
        return (0.0, 0.0)
    if len(seconds) == 1:
        return (seconds[0] * 1000.0, seconds[0] * 1000.0)
    grid = statistics.quantiles(sorted(seconds), n=100, method="inclusive")
    return (grid[49] * 1000.0, grid[98] * 1000.0)


@dataclass
class TickStats:
    """One tick's worth of measurements."""

    tick: int
    opens: int = 0
    closes: int = 0
    live: int = 0
    wave_events: int = 0
    notifications: int = 0  # report-wave notifications this tick
    churn_notifications: int = 0  # Lemma-1 re-notifications from POI churn
    calls: int = 0  # dispatch-layer calls timed this tick
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    wave_ms: float = 0.0  # wall-clock of the tick's report_many wave
    latencies: list[float] = field(default_factory=list, repr=False)

    def record_call(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def finish(self) -> None:
        """Fold the raw latency sample into the tick's quantiles."""
        self.calls = len(self.latencies)
        self.p50_ms, self.p99_ms = quantiles_ms(self.latencies)


class ScenarioRecorder:
    """Accumulates :class:`TickStats` and the end-of-run summary."""

    def __init__(self, backend=None):
        self.backend = backend
        self.ticks: list[TickStats] = []
        self._current: Optional[TickStats] = None
        self._own_baselines: dict[int, tuple[int, int]] = {}
        self.shard_load_series: list[dict[int, int]] = []

    # ------------------------------------------------------------------
    # Runner-facing protocol
    # ------------------------------------------------------------------

    def begin_tick(self, tick: int) -> TickStats:
        self._current = TickStats(tick=tick)
        return self._current

    def end_tick(self) -> TickStats:
        stats = self._current
        if stats is None:
            raise RuntimeError("end_tick without begin_tick")
        stats.finish()
        self.ticks.append(stats)
        self._current = None
        loads = self._shard_loads()
        if loads is not None:
            self.shard_load_series.append(
                {load.shard_id: load.score for load in loads}
            )
        return stats

    def _shard_loads(self):
        """Per-shard load rows, for any backend that can produce them.

        Cluster front doors expose ``shard_loads()`` directly; a bare
        :class:`~repro.service.MPNService` qualifies as a single
        "shard" for :func:`collect_shard_loads` (its ``metrics`` is an
        attribute, not a method).  Backends where ``metrics`` is a
        remote *call* (``RemoteBackend``) are skipped rather than
        charged a wire round-trip per tick.
        """
        backend = self.backend
        if backend is None:
            return None
        loads_fn = getattr(backend, "shard_loads", None)
        if callable(loads_fn):
            return loads_fn()
        metrics = getattr(backend, "metrics", None)
        if metrics is None or callable(metrics):
            return None
        return collect_shard_loads({0: backend}, self._own_baselines)

    # ------------------------------------------------------------------
    # Rollup
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """The run's aggregate shape, JSON-ready."""
        pooled = [s for tick in self.ticks for s in tick.latencies]
        p50, p99 = quantiles_ms(pooled)
        per_tick_notifications = [
            t.notifications + t.churn_notifications for t in self.ticks
        ]
        return {
            "ticks": len(self.ticks),
            "dispatch_calls": len(pooled),
            "p50_ms": p50,
            "p99_ms": p99,
            "total_notifications": sum(t.notifications for t in self.ticks),
            "total_churn_notifications": sum(
                t.churn_notifications for t in self.ticks
            ),
            "total_wave_events": sum(t.wave_events for t in self.ticks),
            "peak_live": max((t.live for t in self.ticks), default=0),
            "notifications_per_tick": _distribution(per_tick_notifications),
            "tick_p99_ms": _distribution([t.p99_ms for t in self.ticks]),
            "per_tick": [
                {
                    "tick": t.tick,
                    "live": t.live,
                    "opens": t.opens,
                    "closes": t.closes,
                    "wave_events": t.wave_events,
                    "notifications": t.notifications
                    + t.churn_notifications,
                    "p50_ms": round(t.p50_ms, 4),
                    "p99_ms": round(t.p99_ms, 4),
                }
                for t in self.ticks
            ],
            "final_shard_scores": (
                self.shard_load_series[-1] if self.shard_load_series else None
            ),
        }


def _distribution(values: list) -> dict:
    """min/p50/p99/max of a per-tick series."""
    if not values:
        return {"min": 0, "p50": 0, "p99": 0, "max": 0}
    ordered = sorted(values)
    if len(ordered) == 1:
        lone = ordered[0]
        return {"min": lone, "p50": lone, "p99": lone, "max": lone}
    grid = statistics.quantiles(ordered, n=100, method="inclusive")
    return {
        "min": ordered[0],
        "p50": grid[49],
        "p99": grid[98],
        "max": ordered[-1],
    }
