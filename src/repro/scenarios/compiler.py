"""Spec -> lazy per-tick event stream.

The compiler turns a :class:`~repro.scenarios.spec.ScenarioSpec` into a
deterministic stream of :class:`TickEvents` — one object per tick,
yielded lazily.  Nothing population-sized is ever materialized at once:
the eager part is an integer schedule (one ``(open_tick, cohort, k)``
triple per session), and each session's member trajectories come into
existence only at its open tick and are dropped at its close.  The
stream carries pure kinematics (who exists, where everyone is); escape
detection and service traffic are the runner's job, which is what makes
the stream byte-identical regardless of the backend that consumes it.

Determinism: every random draw comes from a generator seeded through
``numpy.random.SeedSequence`` over *integer* keys — never a string hash
(``PYTHONHASHSEED`` would break reruns) — keyed by (scenario seed,
stream id, cohort index, session index), so any session's trajectory is
reproducible in isolation.

Session ids are pre-assigned here, in open order, starting at 0 —
exactly the order every ``ServiceBackend`` numbers sessions — so the
runner can assert its backend agreed with the schedule instead of
maintaining an id translation table.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.scenarios.spec import CohortSpec, ScenarioSpec

# Integer stream ids for SeedSequence keying (never string hashes).
_KEY_TRAJECTORY = 1
_KEY_CHURN = 2
_KEY_VENUE = 3
KEY_SPOT_CHECK = 4  # reserved for the runner's sampling stream


def derive_rng(*keys: int) -> random.Random:
    """A ``random.Random`` seeded from integer keys via SeedSequence."""
    state = np.random.SeedSequence(list(keys)).generate_state(1, np.uint64)
    return random.Random(int(state[0]))


@dataclass(frozen=True)
class OpenEvent:
    """A group forms: open a session with these initial positions."""

    session_id: int
    cohort: str
    policy: str  # policy-mix entry name; resolve via spec.resolve_policy
    positions: tuple


@dataclass(frozen=True)
class MoveEvent:
    """One live group's member positions at this tick."""

    session_id: int
    positions: tuple


@dataclass(frozen=True)
class TickEvents:
    """Everything that happens in one tick, in application order.

    Order within a tick is fixed: POI churn first (the world changes
    under everyone), then opens, then the move wave, then closes.
    """

    tick: int
    churn: Optional[tuple[tuple, tuple]]  # (adds, removes) or None
    opens: tuple[OpenEvent, ...]
    moves: tuple[MoveEvent, ...]
    closes: tuple[int, ...]


class _DelayedWalk:
    """A member's view of a shared group trajectory, offset by ``delay``.

    Network cohorts walk one shortest path per *group* (one Dijkstra,
    not ``group_size``); member ``m`` trails the leader by ``m`` ticks,
    which keeps the group spatially coherent without per-member paths.
    """

    __slots__ = ("trajectory", "delay")

    def __init__(self, trajectory, delay: int):
        self.trajectory = trajectory
        self.delay = delay

    def at(self, t: int):
        return self.trajectory.at(max(0, t - self.delay))


def _walk_path(space, path: Sequence, speed: float, n: int):
    """``n`` per-tick positions walking ``path`` at ``speed``, then parked."""
    from repro.network_ext.monitor import NetworkTrajectory
    from repro.network_ext.space import NetworkPosition

    out = [NetworkPosition.at_node(path[0])]
    for a, b in zip(path, path[1:]):
        if len(out) >= n:
            break
        length = space.edge_length(a, b)
        offset = 0.0
        while offset + speed < length and len(out) < n:
            offset += speed
            out.append(NetworkPosition.on_edge(a, b, offset))
        if len(out) < n:
            out.append(NetworkPosition.at_node(b))
    while len(out) < n:
        out.append(out[-1])
    return NetworkTrajectory(tuple(out[:n]))


@dataclass(frozen=True)
class _ScheduleEntry:
    session_id: int
    cohort_idx: int
    k: int  # session index within its cohort
    open_tick: int
    close_tick: Optional[int]  # None when the horizon ends first


class CompiledScenario:
    """The lazy event stream for one spec.

    Iterate :meth:`ticks` to consume the stream; ``total_opened`` and
    ``peak_live`` report, after (or during) an iteration, how many
    sessions ever existed and how many were materialized at once — the
    laziness evidence the fleet benchmark gates on.
    """

    def __init__(self, spec: ScenarioSpec):
        spec.validate()
        self.spec = spec
        self.schedule = self._build_schedule(spec)
        self.total_sessions = len(self.schedule)
        self.total_opened = 0
        self.peak_live = 0
        self._net_space = None  # planning graph, built once, network only

    @staticmethod
    def _build_schedule(spec: ScenarioSpec) -> list[_ScheduleEntry]:
        """The integer-only eager part: one record per session."""
        triples = [
            (cohort.open_tick(k), ci, k)
            for ci, cohort in enumerate(spec.cohorts)
            for k in range(cohort.sessions)
        ]
        triples.sort()
        out = []
        for sid, (open_tick, ci, k) in enumerate(triples):
            close = open_tick + spec.cohorts[ci].lifetime
            out.append(
                _ScheduleEntry(
                    session_id=sid,
                    cohort_idx=ci,
                    k=k,
                    open_tick=open_tick,
                    close_tick=close if close < spec.ticks else None,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Trajectory materialization (only at open time)
    # ------------------------------------------------------------------

    def _planning_space(self):
        if self._net_space is None:
            self._net_space = self.spec.space.network_space()
        return self._net_space

    def _venue(self, cohort_idx: int):
        """The cohort's shared convergence target (seeded, cached)."""
        rng = derive_rng(self.spec.seed, _KEY_VENUE, cohort_idx)
        if self.spec.space.kind == "network":
            nodes = sorted(self._planning_space().graph.nodes)
            return nodes[rng.randrange(len(nodes))]
        world = self.spec.space.world_rect()
        # Keep the venue away from the walls so the crowd can mill.
        mx = 0.2 * (world.x_hi - world.x_lo)
        my = 0.2 * (world.y_hi - world.y_lo)
        from repro.geometry.point import Point

        return Point(
            rng.uniform(world.x_lo + mx, world.x_hi - mx),
            rng.uniform(world.y_lo + my, world.y_hi - my),
        )

    def _materialize(self, entry: _ScheduleEntry) -> list:
        """Member position providers for one opening session."""
        cohort = self.spec.cohorts[entry.cohort_idx]
        rng = derive_rng(
            self.spec.seed, _KEY_TRAJECTORY, entry.cohort_idx, entry.k
        )
        n = cohort.lifetime + 1
        if self.spec.space.kind == "network":
            return self._materialize_network(cohort, entry, rng, n)
        return self._materialize_euclidean(cohort, entry, rng, n)

    def _materialize_network(
        self, cohort: CohortSpec, entry: _ScheduleEntry, rng, n: int
    ) -> list:
        from repro.network_ext.monitor import network_trajectory

        space = self._planning_space()
        nodes = sorted(space.graph.nodes)
        if cohort.kind == "wanderer":
            return [
                network_trajectory(space, n, cohort.speed, rng)
                for _ in range(cohort.group_size)
            ]
        # commuter / event_crowd: one shortest path per group.
        import networkx as nx

        origin = nodes[rng.randrange(len(nodes))]
        if cohort.kind == "commuter":
            dest = origin
            while dest == origin:
                dest = nodes[rng.randrange(len(nodes))]
        else:  # event_crowd converges on the cohort venue
            dest = self._venue(entry.cohort_idx)
            if dest == origin:
                origin = nodes[(nodes.index(dest) + 1) % len(nodes)]
        path = nx.shortest_path(space.graph, origin, dest, weight="length")
        walk = _walk_path(space, path, cohort.speed, n)
        return [_DelayedWalk(walk, m) for m in range(cohort.group_size)]

    def _materialize_euclidean(
        self, cohort: CohortSpec, entry: _ScheduleEntry, rng, n: int
    ) -> list:
        from repro.geometry.point import Point
        from repro.mobility.converge import (
            ConvergeParams,
            generate_converge_trajectory,
        )
        from repro.mobility.random_waypoint import (
            WaypointParams,
            generate_waypoint_trajectory,
        )

        world = self.spec.space.world_rect()
        center = world.sample(rng)
        spread = cohort.spawn_spread

        def spawn() -> Point:
            return Point(
                min(max(center.x + rng.uniform(-spread, spread), world.x_lo), world.x_hi),
                min(max(center.y + rng.uniform(-spread, spread), world.y_lo), world.y_hi),
            )

        if cohort.kind == "event_crowd":
            venue = self._venue(entry.cohort_idx)
            params = ConvergeParams(
                speed=cohort.speed,
                mill_radius=max(10.0, spread / 2.0),
                mill_step=max(0.5, cohort.speed / 3.0),
            )
            return [
                generate_converge_trajectory(
                    world, n, venue, params, rng, start=spawn()
                )
                for _ in range(cohort.group_size)
            ]
        if cohort.kind == "delivery":
            # Vans: faster, brief stops at each drop-off.
            params = WaypointParams(
                speed=cohort.speed,
                speed_jitter=0.2,
                pause_probability=0.05,
                pause_max_steps=3,
            )
        else:  # wanderer
            params = WaypointParams(speed=cohort.speed)
        return [
            generate_waypoint_trajectory(world, n, params, rng, start=spawn())
            for _ in range(cohort.group_size)
        ]

    # ------------------------------------------------------------------
    # POI churn planning
    # ------------------------------------------------------------------

    def _churn_batch(self, rng, current: list):
        """One (adds, removes) batch; mutates ``current`` to match."""
        churn = self.spec.poi_churn
        if self.spec.space.kind == "network":
            graph = self._planning_space().graph
            present = set(current)
            candidates = [node for node in sorted(graph.nodes) if node not in present]
            adds = rng.sample(candidates, min(churn.adds, len(candidates)))
        else:
            world = self.spec.space.world_rect()
            adds = [world.sample(rng) for _ in range(churn.adds)]
        # Never drain the space: keep at least four POIs resident so
        # every strategy still has competitors to rank.
        n_remove = min(churn.removes, max(0, len(current) - 4))
        removed = rng.sample(current, n_remove)
        gone = set(removed) if self.spec.space.kind == "network" else removed
        if self.spec.space.kind == "network":
            current[:] = [p for p in current if p not in gone] + list(adds)
        else:
            current[:] = [p for p in current if p not in removed] + list(adds)
        return (
            tuple((p, None) for p in adds),
            tuple((p, None) for p in removed),
        )

    # ------------------------------------------------------------------
    # The stream
    # ------------------------------------------------------------------

    def ticks(self) -> Iterator[TickEvents]:
        """Yield the scenario's ticks in order, materializing lazily."""
        spec = self.spec
        self.total_opened = 0
        self.peak_live = 0
        opens_at: dict[int, list[_ScheduleEntry]] = {}
        closes_at: dict[int, list[int]] = {}
        for entry in self.schedule:
            opens_at.setdefault(entry.open_tick, []).append(entry)
            if entry.close_tick is not None:
                closes_at.setdefault(entry.close_tick, []).append(
                    entry.session_id
                )
        live: dict[int, list] = {}  # sid -> member position providers
        opened_tick: dict[int, int] = {}  # sid -> open tick
        churn_rng = derive_rng(spec.seed, _KEY_CHURN)
        current_pois = list(spec.space.initial_pois()) if spec.poi_churn else []
        for t in range(spec.ticks):
            churn = None
            if spec.poi_churn and t > 0 and t % spec.poi_churn.every == 0:
                churn = self._churn_batch(churn_rng, current_pois)
            closing = tuple(sorted(closes_at.get(t, ())))
            closing_set = set(closing)
            opens = []
            for entry in opens_at.get(t, ()):
                cohort = spec.cohorts[entry.cohort_idx]
                members = self._materialize(entry)
                live[entry.session_id] = members
                opened_tick[entry.session_id] = t
                policy = cohort.policies[entry.k % len(cohort.policies)]
                opens.append(
                    OpenEvent(
                        session_id=entry.session_id,
                        cohort=cohort.name,
                        policy=policy,
                        positions=tuple(m.at(0) for m in members),
                    )
                )
            self.total_opened += len(opens)
            self.peak_live = max(self.peak_live, len(live))
            moves = tuple(
                MoveEvent(
                    session_id=sid,
                    positions=tuple(
                        m.at(t - opened_tick[sid]) for m in live[sid]
                    ),
                )
                for sid in sorted(live)
                if opened_tick[sid] < t and sid not in closing_set
            )
            yield TickEvents(
                tick=t,
                churn=churn,
                opens=tuple(opens),
                moves=moves,
                closes=closing,
            )
            for sid in closing:
                del live[sid]
                del opened_tick[sid]


def compile_spec(spec: ScenarioSpec) -> CompiledScenario:
    """Validate ``spec`` and wrap it in its lazy event stream."""
    return CompiledScenario(spec)


def stream_digest(spec: ScenarioSpec, max_ticks: Optional[int] = None) -> str:
    """SHA-256 over the stream's canonical reprs — the byte-identity probe.

    Two compiles of the same spec must produce the same digest on any
    machine; any divergence in positions, ordering, ids, or churn shows
    up here first.
    """
    digest = hashlib.sha256()
    for events in compile_spec(spec).ticks():
        digest.update(repr(events).encode())
        if max_ticks is not None and events.tick + 1 >= max_ticks:
            break
    return digest.hexdigest()
