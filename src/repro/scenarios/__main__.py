"""CLI: run a bundled scenario preset against a chosen backend.

::

    PYTHONPATH=src python -m repro.scenarios --preset smoke \
        --backend process --shards 2 --spot-check 0.25

Backends: ``service`` (one unsharded :class:`MPNService`), ``cluster``
(in-process :class:`MPNCluster`), ``process`` (spawned worker processes
behind the wire, :class:`ProcessCluster`).  Exit code is non-zero if
the run fails or any exactness spot-check diverges.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scenarios.presets import PRESETS, get_preset
from repro.scenarios.recorder import ScenarioRecorder
from repro.scenarios.runner import run_scenario


def _build_backend(kind: str, spec, shards: int):
    """The backend plus its cleanup callable."""
    if kind == "service":
        from repro.service.service import MPNService

        return MPNService(spec.space()), lambda: None
    if kind == "cluster":
        from repro.cluster.cluster import MPNCluster

        return MPNCluster(shards, spec.space), lambda: None
    from repro.transport.worker import ProcessCluster

    cluster = ProcessCluster(shards, spec.space)
    return cluster, cluster.close


def _print_table(summary: dict, every: int) -> None:
    header = (
        f"{'tick':>5} {'live':>7} {'opens':>6} {'closes':>6} "
        f"{'wave':>6} {'notifs':>7} {'p50 ms':>8} {'p99 ms':>8}"
    )
    print(header)
    print("-" * len(header))
    rows = summary["per_tick"]
    for row in rows:
        if row["tick"] % every and row is not rows[-1]:
            continue
        print(
            f"{row['tick']:>5} {row['live']:>7} {row['opens']:>6} "
            f"{row['closes']:>6} {row['wave_events']:>6} "
            f"{row['notifications']:>7} {row['p50_ms']:>8.3f} "
            f"{row['p99_ms']:>8.3f}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="smoke",
        help="bundled scenario to run",
    )
    parser.add_argument(
        "--backend", choices=("service", "cluster", "process"),
        default="service", help="which ServiceBackend serves the fleet",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard count for cluster/process backends",
    )
    parser.add_argument(
        "--spot-check", type=float, default=0.1, metavar="FRACTION",
        help="fraction of sessions replayed for exactness (0 disables)",
    )
    parser.add_argument(
        "--spot-check-cap", type=int, default=64,
        help="most sessions the spot-check will sample",
    )
    parser.add_argument(
        "--every", type=int, default=1, metavar="N",
        help="print every Nth tick row of the summary table",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full summary as JSON instead of the table",
    )
    args = parser.parse_args(argv)

    spec = get_preset(args.preset)
    backend, cleanup = _build_backend(args.backend, spec, args.shards)
    try:
        recorder = ScenarioRecorder(backend)
        result = run_scenario(
            spec,
            backend,
            recorder=recorder,
            spot_check_fraction=args.spot_check,
            spot_check_cap=args.spot_check_cap,
        )
    finally:
        cleanup()

    if args.json:
        payload = {
            "preset": spec.name,
            "backend": args.backend,
            "total_opened": result.total_opened,
            "peak_live": result.peak_live,
            "elapsed_seconds": result.elapsed_seconds,
            "summary": result.summary,
            "spot_check": (
                None
                if result.spot_check is None
                else {
                    "sampled_sessions": result.spot_check.sampled_sessions,
                    "compared_notifications": (
                        result.spot_check.compared_notifications
                    ),
                    "clean": result.spot_check.clean,
                }
            ),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"preset {spec.name!r} on {args.backend}: "
            f"{result.total_opened} sessions over {result.ticks} ticks "
            f"(peak live {result.peak_live}) in "
            f"{result.elapsed_seconds:.1f}s"
        )
        _print_table(result.summary, max(1, args.every))
        print(
            f"wave events {result.total_wave_events}, notifications "
            f"{result.total_notifications} "
            f"(+{result.total_churn_notifications} POI-churn)"
        )
        if result.spot_check is not None:
            check = result.spot_check
            status = "clean" if check.clean else "DIVERGED"
            print(
                f"spot-check: {check.sampled_sessions} sessions, "
                f"{check.compared_notifications} notifications replayed "
                f"bit-identically -> {status}"
            )
    if result.spot_check is not None and not result.spot_check.clean:
        print(
            f"spot-check diverged; mismatched sessions: "
            f"{result.spot_check.mismatched_sessions}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
