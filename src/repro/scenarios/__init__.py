"""Declarative population-scale fleet workloads.

A scenario is data — a frozen :class:`~repro.scenarios.spec.ScenarioSpec`
describing cohorts of moving groups, their formation/dissolution
schedules, policy mix and POI churn — compiled into a deterministic,
lazy, per-tick event stream and streamed through any
``ServiceBackend`` (:class:`~repro.service.MPNService`,
:class:`~repro.cluster.MPNCluster`,
:class:`~repro.transport.worker.ProcessCluster`, or a
:class:`~repro.transport.client.RemoteBackend`) unchanged, with seeded
exactness spot-checks and a per-tick latency/notification recorder.

``python -m repro.scenarios --preset smoke`` runs a bundled preset.
"""

from repro.scenarios.spec import (
    CityGraphSpaceSpec,
    CohortSpec,
    EuclideanSpaceSpec,
    PoiChurnSpec,
    ScenarioSpec,
    resolve_policy,
)
from repro.scenarios.compiler import (
    CompiledScenario,
    MoveEvent,
    OpenEvent,
    TickEvents,
    compile_spec,
    stream_digest,
)
from repro.scenarios.recorder import ScenarioRecorder, TickStats
from repro.scenarios.runner import (
    ScenarioResult,
    SpotCheckReport,
    notification_key,
    run_scenario,
)
from repro.scenarios.presets import PRESETS, get_preset

__all__ = [
    "CityGraphSpaceSpec",
    "CohortSpec",
    "EuclideanSpaceSpec",
    "PoiChurnSpec",
    "ScenarioSpec",
    "resolve_policy",
    "CompiledScenario",
    "MoveEvent",
    "OpenEvent",
    "TickEvents",
    "compile_spec",
    "stream_digest",
    "ScenarioRecorder",
    "TickStats",
    "ScenarioResult",
    "SpotCheckReport",
    "notification_key",
    "run_scenario",
    "PRESETS",
    "get_preset",
]
