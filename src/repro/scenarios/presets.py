"""Bundled scenario presets, smallest to largest.

* ``smoke`` — seconds-scale, used by CI's scenario smoke job and the
  tier-1 fleet benchmark's default mode: every cohort kind the
  Euclidean plane serves, with POI churn, in 14 ticks.
* ``commuter_rush`` — 10^4 sessions of commuters and an event crowd on
  a seeded city road graph (``examples/scenario_fleet.py``).
* ``metro_fleet`` — the 10^5-session recorded run behind
  ``BENCH_fleet.json``: delivery fleets, wanderers, and two stadium
  crowds arriving over 180 ticks, never more than ~15% of the
  population live at once — the laziness the compiler guarantees.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    CityGraphSpaceSpec,
    CohortSpec,
    EuclideanSpaceSpec,
    PoiChurnSpec,
    ScenarioSpec,
)


def smoke() -> ScenarioSpec:
    """Tiny end-to-end preset: every Euclidean cohort kind + churn."""
    return ScenarioSpec(
        name="smoke",
        seed=101,
        ticks=17,
        space=EuclideanSpaceSpec(
            world=(0.0, 0.0, 2000.0, 2000.0), n_pois=120, poi_seed=7
        ),
        cohorts=(
            CohortSpec(
                name="wanderers",
                kind="wanderer",
                sessions=24,
                group_size=2,
                first_tick=0,
                last_tick=10,
                lifetime=4,
                speed=10.0,
                spawn_spread=40.0,
                policies=("circle", "circle", "circle", "tile"),
            ),
            CohortSpec(
                name="vans",
                kind="delivery",
                sessions=16,
                group_size=2,
                first_tick=1,
                last_tick=11,
                lifetime=4,
                speed=16.0,
                spawn_spread=30.0,
                policies=("circle",),
            ),
            CohortSpec(
                name="concert",
                kind="event_crowd",
                sessions=20,
                group_size=3,
                first_tick=0,
                last_tick=9,
                lifetime=5,
                speed=12.0,
                spawn_spread=60.0,
                policies=("circle",),
            ),
        ),
        poi_churn=PoiChurnSpec(every=4, adds=5, removes=3),
        description="CI smoke: 60 sessions, all Euclidean cohort kinds",
    )


def commuter_rush() -> ScenarioSpec:
    """10^4 road-network sessions: morning commute plus a stadium crowd."""
    return ScenarioSpec(
        name="commuter_rush",
        seed=2013,
        ticks=60,
        space=CityGraphSpaceSpec(
            grid_size=22, graph_seed=17, n_pois=130, poi_seed=23
        ),
        cohorts=(
            CohortSpec(
                name="commuters",
                kind="commuter",
                sessions=7000,
                group_size=3,
                first_tick=0,
                last_tick=45,
                lifetime=16,
                speed=1.2,
                policies=("net_circle",),
            ),
            CohortSpec(
                name="match_crowd",
                kind="event_crowd",
                sessions=3000,
                group_size=3,
                first_tick=10,
                last_tick=40,
                lifetime=14,
                speed=0.9,
                policies=("net_circle",),
            ),
        ),
        poi_churn=PoiChurnSpec(every=12, adds=6, removes=3),
        description="10k sessions over a city road graph",
    )


def metro_fleet() -> ScenarioSpec:
    """The recorded 10^5-session metro: fleets, wanderers, two stadiums."""
    return ScenarioSpec(
        name="metro_fleet",
        seed=420013,
        ticks=205,
        space=EuclideanSpaceSpec(
            world=(0.0, 0.0, 20000.0, 20000.0), n_pois=2500, poi_seed=7
        ),
        cohorts=(
            CohortSpec(
                name="delivery_fleet",
                kind="delivery",
                sessions=40320,
                group_size=2,
                first_tick=0,
                last_tick=180,
                lifetime=22,
                speed=22.0,
                spawn_spread=120.0,
                policies=("circle",),
            ),
            CohortSpec(
                name="wanderers",
                kind="wanderer",
                sessions=35280,
                group_size=2,
                first_tick=0,
                last_tick=180,
                lifetime=24,
                speed=14.0,
                spawn_spread=90.0,
                policies=("circle",),
            ),
            CohortSpec(
                name="stadium_north",
                kind="event_crowd",
                sessions=13200,
                group_size=3,
                first_tick=20,
                last_tick=120,
                lifetime=26,
                speed=18.0,
                spawn_spread=150.0,
                policies=("circle",),
            ),
            CohortSpec(
                name="stadium_south",
                kind="event_crowd",
                sessions=12000,
                group_size=3,
                first_tick=60,
                last_tick=170,
                lifetime=26,
                speed=18.0,
                spawn_spread=150.0,
                policies=("circle",),
            ),
        ),
        poi_churn=PoiChurnSpec(every=15, adds=20, removes=10),
        description="100,800 sessions streamed in ticks; peak live ~14k",
    )


PRESETS = {
    "smoke": smoke,
    "commuter_rush": commuter_rush,
    "metro_fleet": metro_fleet,
}


def get_preset(name: str) -> ScenarioSpec:
    try:
        return PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
