"""Spatial indexing substrate.

The paper's server "manages a data set P of points-of-interest and
indexes it by an R-tree" (Section 3.1).  This subpackage provides that
index behind a pluggable backend layer (:mod:`repro.index.backend`):
the vectorized flat R-tree (:mod:`repro.index.flat`) is the default,
and the pointer-based object R-tree (:mod:`repro.index.rtree`) is the
reference.  Construct indexes via :func:`build_index`; the aggregate
(group) nearest-neighbor search of ref. [24] lives in :mod:`repro.gnn`
and dispatches to whichever backend built the tree.
"""

from repro.index.backend import (
    DEFAULT_BACKEND,
    FlatRTree,  # None when NumPy is unavailable; see repro.index.backend
    SpatialIndex,
    available_backends,
    build_index,
)
from repro.index.knn import knn, nearest, range_query
from repro.index.rtree import Entry, RTree, RTreeNode

__all__ = [
    "DEFAULT_BACKEND",
    "SpatialIndex",
    "available_backends",
    "build_index",
    "FlatRTree",
    "RTree",
    "RTreeNode",
    "Entry",
    "knn",
    "nearest",
    "range_query",
]
