"""Spatial indexing substrate.

The paper's server "manages a data set P of points-of-interest and
indexes it by an R-tree" (Section 3.1).  This subpackage provides that
R-tree: STR bulk loading for static POI sets, quadratic-split insertion
for dynamic maintenance, range queries, and best-first k-nearest-
neighbor search.  The aggregate (group) nearest-neighbor search of
ref. [24] lives in :mod:`repro.gnn` and traverses this tree.
"""

from repro.index.rtree import RTree, RTreeNode, Entry
from repro.index.knn import knn, nearest, range_query

__all__ = ["RTree", "RTreeNode", "Entry", "knn", "nearest", "range_query"]
