"""Best-first (incremental) nearest-neighbor and range search."""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import Entry, RTree, RTreeNode


def incremental_nearest(tree: RTree, query: Point) -> Iterator[Entry]:
    """Yield leaf entries in increasing distance from ``query``.

    Classic best-first traversal with a priority queue keyed on
    ``min_dist``; optimal in the number of node accesses.
    """
    counter = itertools.count()  # tie-breaker: heap entries never compare nodes
    heap: list[tuple[float, int, bool, object]] = []
    root = tree.root
    heapq.heappush(heap, (root.rect.min_dist(query), next(counter), False, root))
    while heap:
        d, _, is_entry, item = heapq.heappop(heap)
        if is_entry:
            yield item  # type: ignore[misc]
            continue
        node: RTreeNode = item  # type: ignore[assignment]
        if node.is_leaf:
            for e in node.children:
                heapq.heappush(
                    heap, (e.point.dist(query), next(counter), True, e)
                )
        else:
            for c in node.children:
                heapq.heappush(
                    heap, (c.rect.min_dist(query), next(counter), False, c)
                )


def knn(tree: RTree, query: Point, k: int) -> list[Entry]:
    """The ``k`` nearest entries to ``query`` (fewer if the tree is small)."""
    if k <= 0:
        return []
    out: list[Entry] = []
    for e in incremental_nearest(tree, query):
        out.append(e)
        if len(out) == k:
            break
    return out


def nearest(tree: RTree, query: Point) -> Entry | None:
    """The single nearest entry, or ``None`` for an empty tree."""
    result = knn(tree, query, 1)
    return result[0] if result else None


def range_query(tree: RTree, window: Rect) -> list[Entry]:
    """All entries whose point lies inside ``window``."""
    out: list[Entry] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not node.rect.intersects(window):
            continue
        if node.is_leaf:
            out.extend(e for e in node.children if window.contains_point(e.point))
        else:
            stack.extend(c for c in node.children if c.rect.intersects(window))
    return out


def circle_range_query(tree: RTree, center: Point, radius: float) -> list[Entry]:
    """All entries within ``radius`` of ``center``."""
    out: list[Entry] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.rect.min_dist(center) > radius:
            continue
        if node.is_leaf:
            out.extend(e for e in node.children if e.point.dist(center) <= radius)
        else:
            stack.extend(node.children)
    return out
