"""Best-first (incremental) nearest-neighbor and range search.

These module-level functions are the historical public API; since the
backend refactor they dispatch to whichever :class:`SpatialIndex`
backend built the tree (vectorized flat kernels or the object
reference traversals) and work identically on both.
"""

from __future__ import annotations

from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.backend import SpatialIndex
from repro.index.rtree import Entry


def incremental_nearest(tree: SpatialIndex, query: Point) -> Iterator[Entry]:
    """Yield leaf entries in increasing distance from ``query``."""
    return tree.incremental_nearest(query)


def knn(tree: SpatialIndex, query: Point, k: int) -> list[Entry]:
    """The ``k`` nearest entries to ``query`` (fewer if the tree is small)."""
    return tree.knn(query, k)


def nearest(tree: SpatialIndex, query: Point) -> Entry | None:
    """The single nearest entry, or ``None`` for an empty tree."""
    return tree.nearest(query)


def range_query(tree: SpatialIndex, window: Rect) -> list[Entry]:
    """All entries whose point lies inside ``window``."""
    return tree.range_query(window)


def circle_range_query(tree: SpatialIndex, center: Point, radius: float) -> list[Entry]:
    """All entries within ``radius`` of ``center``."""
    return tree.circle_range_query(center, radius)
