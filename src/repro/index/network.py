"""CSR-packed road-network POI index with bulk distance kernels.

The network analogue of the flat R-tree: where the Euclidean backend
packs POI coordinates into structure-of-arrays and answers GNN queries
with vectorized frontier kernels, this index packs the road graph into
CSR adjacency arrays (``indptr`` / ``indices`` / ``weights``), buckets
the POIs by the graph node they sit on, and answers aggregate
nearest-neighbor queries from *bulk* shortest-path distance rows:

* one Dijkstra run per distinct anchor node (SciPy's C implementation
  when available, a heap-based CSR traversal otherwise), cached in a
  byte-budgeted LRU behind the shared
  :class:`~repro.index.oracle.DistanceOracle` — users sliding along an
  edge keep their endpoint anchors, and POI updates never invalidate
  distances;
* per-user node-distance rows combined from the anchor rows with one
  ``np.minimum`` pass;
* POI scores gathered and aggregated across users in NumPy;
* at city scale (or when forced through
  :class:`~repro.index.oracle.OracleConfig`), an ALT landmark pass
  first: triangle-inequality lower/upper bounds from ~16 pinned
  landmark rows discard almost every POI, and only the survivors are
  scored exactly from bounded-radius Dijkstra runs.  Pruning never
  changes answers — both paths produce bit-identical results.

The results are bit-identical to the brute-force reference
(:func:`repro.network_ext.gnn.network_gnn`): the same additions in the
same order, the same min-over-anchors, the same ``(distance,
str(poi))`` tie-break.  ``benchmarks/test_micro_network_gnn.py`` holds
the kernel to a >=3x speedup over that reference at 10k-edge /
5k-POI scale, and ``benchmarks/test_micro_citynet.py`` holds the ALT
path to a >=3x speedup over the exact full-row path at 100k-edge
scale under a hard row-cache byte ceiling.

POIs are graph nodes (real POI datasets are map-matched to the road
graph, matching the rest of :mod:`repro.network_ext`).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.index.flat import DEFAULT_DELTA_FRACTION
from repro.index.oracle import OracleConfig, oracle_for, padded_cutoff
from repro.index.rtree import resolve_removals_indexed

try:  # SciPy is optional; the fallback kernel needs only NumPy.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised only without scipy
    _csr_matrix = None
    _csgraph_dijkstra = None


def _scipy_kernels() -> tuple:
    """The SciPy pair read from *this* module's globals at call time,
    so tests monkeypatching ``_csgraph_dijkstra`` here flip the shared
    oracle onto the pure-python kernels too."""
    return _csr_matrix, _csgraph_dijkstra


class NetworkIndex:
    """Edge-weighted road graph + node-bucketed POIs, query-ready.

    ``space`` is a :class:`repro.network_ext.space.NetworkSpace` (or
    anything exposing ``graph`` and ``anchors``); the graph is packed
    once — into the space's shared :class:`DistanceOracle` — and
    assumed immutable afterwards, while the POI set mutates freely
    through :meth:`bulk_update` / :meth:`insert` / :meth:`delete`.
    All indexes over one space share that oracle's row cache and
    landmark rows; ``oracle_config`` tunes it on first construction.
    """

    def __init__(
        self,
        space,
        pois: Sequence[Hashable] = (),
        payloads: Optional[Sequence[Any]] = None,
        delta_fraction: float = DEFAULT_DELTA_FRACTION,
        oracle_config: Optional[OracleConfig] = None,
    ):
        if delta_fraction < 0.0:
            raise ValueError("delta_fraction must be >= 0")
        self.space = space
        self.delta_fraction = delta_fraction
        # Maintenance counters, mirroring FlatRTree: full bucket/array
        # repacks vs delta batches absorbed without one.
        self.build_count = 0
        self.delta_batches = 0
        self._oracle = oracle_for(space, oracle_config, _scipy_kernels)
        self._nodes: list[Hashable] = self._oracle.nodes
        self._node_id: dict[Hashable, int] = self._oracle.node_id
        self._lm_slot_cache: Optional[tuple[np.ndarray, np.ndarray]] = None
        # POI store: (node, payload) items plus a node -> item-index
        # bucket map for O(1) per-node lookups.
        self._items: list[tuple[Hashable, Any]] = []
        self._buckets: dict[Hashable, list[int]] = {}
        self._poi_ids = np.empty(0, dtype=np.int64)
        if payloads is None:
            payloads = [None] * len(pois)
        if len(payloads) != len(pois):
            raise ValueError("payloads length does not match pois")
        self._install([(p, pl) for p, pl in zip(pois, payloads)])

    # The CSR arrays live on the shared oracle; these views keep the
    # packing introspectable where it always was.
    @property
    def indptr(self) -> np.ndarray:
        return self._oracle.indptr

    @property
    def indices(self) -> np.ndarray:
        return self._oracle.indices

    @property
    def weights(self) -> np.ndarray:
        return self._oracle.weights

    @property
    def oracle(self):
        """The space's shared :class:`~repro.index.oracle.DistanceOracle`."""
        return self._oracle

    # ------------------------------------------------------------------
    # POI bookkeeping
    # ------------------------------------------------------------------

    def _install(self, items: list[tuple[Hashable, Any]]) -> None:
        """Repack the POI store from scratch and reset the delta state."""
        for node, _ in items:
            if node not in self._node_id:
                raise ValueError(f"POI node {node!r} is not on the road graph")
        self._items = items
        self._buckets = {}
        for i, (node, _) in enumerate(items):
            self._buckets.setdefault(node, []).append(i)
        self._poi_ids = np.asarray(
            [self._node_id[node] for node, _ in items], dtype=np.int64
        )
        self._tomb = np.zeros(len(items), dtype=bool)
        self._n_dead = 0
        self._buf_items: list[tuple[Hashable, Any]] = []
        self._buf_alive: list[bool] = []
        self._n_buf_dead = 0
        self._slot_cache: Optional[
            tuple[np.ndarray, Optional[np.ndarray]]
        ] = None
        self.build_count += 1

    def _item(self, i: int) -> tuple[Hashable, Any]:
        n_packed = len(self._items)
        if i < n_packed:
            return self._items[i]
        return self._buf_items[i - n_packed]

    def _live_ids(self) -> list[int]:
        n_packed = len(self._items)
        ids: list[int] = (
            np.flatnonzero(~self._tomb).tolist()
            if self._n_dead
            else list(range(n_packed))
        )
        ids.extend(n_packed + j for j, ok in enumerate(self._buf_alive) if ok)
        return ids

    def __len__(self) -> int:
        return (
            len(self._items)
            - self._n_dead
            + len(self._buf_items)
            - self._n_buf_dead
        )

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self.indices) // 2

    def poi_nodes(self) -> list[Hashable]:
        """The live POI nodes in insertion order (duplicates preserved)."""
        return [self._item(i)[0] for i in self._live_ids()]

    def items(self) -> list[tuple[Hashable, Any]]:
        """The live ``(node, payload)`` POI items, in insertion order."""
        return [self._item(i) for i in self._live_ids()]

    def pois_at(self, node: Hashable) -> list[Any]:
        """Payloads of the live POIs bucketed on ``node``."""
        return [self._item(i)[1] for i in self._buckets.get(node, ())]

    def insert(self, node: Hashable, payload: Any = None) -> None:
        self.bulk_update(adds=[(node, payload)])

    def delete(self, node: Hashable, payload: Any = None) -> bool:
        """Remove one POI at ``node`` (payload ``None`` matches any)."""
        try:
            self.bulk_update(removes=[(node, payload)])
        except KeyError:
            return False
        return True

    def bulk_update(
        self,
        adds: Sequence[tuple[Hashable, Any]] = (),
        removes: Sequence[tuple[Hashable, Any]] = (),
    ) -> None:
        """Apply a batch of POI inserts/deletes through the delta layer.

        Removals tombstone their slot and insertions land in the
        buffered arena; the packed store is rebuilt only when the delta
        debt crosses the ``delta_fraction`` threshold (0.0 = repack
        every batch).  Same all-or-nothing contract as the Euclidean
        backends (:func:`repro.index.rtree.resolve_removals_indexed`):
        add nodes are validated against the graph and every removal is
        matched before anything mutates, so an error for a bad entry
        leaves the index untouched.  Distance rows are unaffected —
        the road graph itself is immutable, so the shared oracle's
        caches survive every churn batch.
        """
        for node, _ in adds:
            if node not in self._node_id:
                raise ValueError(f"POI node {node!r} is not on the road graph")
        victims: list[int] = []
        if removes:
            # Bucket lists hold exactly the live ids for a node, in
            # insertion order — resolution costs O(batch), not O(n).
            victims = resolve_removals_indexed(
                lambda n: list(self._buckets.get(n, ())),
                lambda i: self._item(i)[1],
                removes,
            )
        n_packed = len(self._items)
        for i in victims:
            if i < n_packed:
                self._tomb[i] = True
                self._n_dead += 1
            else:
                self._buf_alive[i - n_packed] = False
                self._n_buf_dead += 1
            node = self._item(i)[0]
            bucket = self._buckets[node]
            bucket.remove(i)
            if not bucket:
                del self._buckets[node]
        for node, payload in adds:
            slot = n_packed + len(self._buf_items)
            self._buf_items.append((node, payload))
            self._buf_alive.append(True)
            self._buckets.setdefault(node, []).append(slot)
        self._slot_cache = None
        self.delta_batches += 1
        self._maybe_repack()

    def repack(self) -> None:
        """Fold all deltas into a freshly packed POI store."""
        live = [
            item
            for item, dead in zip(self._items, self._tomb.tolist())
            if not dead
        ]
        live.extend(
            item for item, ok in zip(self._buf_items, self._buf_alive) if ok
        )
        self._install(live)

    def _maybe_repack(self) -> None:
        deltas = self._n_dead + len(self._buf_items)
        if deltas and deltas > self.delta_fraction * max(len(self), 1):
            self.repack()

    def delta_debt(self) -> int:
        """Tombstones + arena slots — what the next repack would fold."""
        return self._n_dead + len(self._buf_items)

    def _poi_slots(self) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """``(node_ids, live_mask)`` over every POI slot, packed + arena.

        ``live_mask`` is ``None`` when no slot is tombstoned.  Cached
        until the next delta batch; the gnn kernel gathers distance
        columns for all slots and masks the dead ones to ``inf``.
        """
        if self._slot_cache is None:
            ids = self._poi_ids
            mask = None if self._n_dead == 0 else ~self._tomb
            if self._buf_items:
                ids = np.concatenate(
                    [
                        ids,
                        np.asarray(
                            [self._node_id[n] for n, _ in self._buf_items],
                            dtype=np.int64,
                        ),
                    ]
                )
                if self._n_dead or self._n_buf_dead:
                    mask = np.concatenate(
                        [~self._tomb, np.asarray(self._buf_alive, dtype=bool)]
                    )
            self._slot_cache = (ids, mask)
        return self._slot_cache

    # ------------------------------------------------------------------
    # Bulk shortest-path distance kernels
    # ------------------------------------------------------------------

    def distance_row(self, node: Hashable) -> np.ndarray:
        """Distances from ``node`` to every graph node (LRU-cached)."""
        return self._oracle.row(self._node_id[node])

    def distance_map(self, node: Hashable) -> dict[Hashable, float]:
        """:meth:`distance_row` as a dict — a drop-in for the networkx
        map :meth:`NetworkSpace.node_distances` would compute, so the
        space can source its maps from the CSR kernel
        (:meth:`repro.network_ext.space.NetworkSpace.set_distance_provider`)
        instead of running a second Dijkstra per anchor."""
        return dict(zip(self._nodes, self.distance_row(node).tolist()))

    def node_pair_distance(self, node_a: Hashable, node_b: Hashable) -> float:
        """Exact node-to-node distance off one LRU row — the space's
        pair provider, avoiding a 100k-entry dict per anchor at city
        scale (:meth:`NetworkSpace.set_pair_distance_provider`)."""
        row = self._oracle.row(self._node_id[node_a])
        return float(row[self._node_id[node_b]])

    def bounded_distance_map(
        self, node: Hashable, cutoff: float
    ) -> dict[Hashable, float]:
        """``{target: distance}`` for every node within ``cutoff``.

        The bounded-radius provider behind
        :meth:`NetworkSpace.node_distances_within`: entries present are
        bit-identical to the full map's, absent targets are farther
        than ``cutoff``.
        """
        row = self._oracle.bounded_row(self._node_id[node], cutoff)
        reached = np.flatnonzero(np.isfinite(row))
        values = row[reached].tolist()
        return {self._nodes[i]: d for i, d in zip(reached.tolist(), values)}

    def _row(self, node_id: int) -> np.ndarray:
        return self._oracle.row(node_id)

    def _compute_rows(self, node_ids: Sequence[int]) -> None:
        """Warm the oracle's cache with one multi-source dispatch."""
        self._oracle.rows(node_ids)

    def user_node_distances(self, users: Sequence[object]) -> np.ndarray:
        """``[m, n_nodes]`` matrix of exact user-to-node distances.

        Row ``i`` is the anchor-combined distance map of user ``i``:
        ``min`` over the user's (node, offset) anchors of ``offset +
        row(node)`` — the same values the brute-force reference reads
        out of its per-anchor Dijkstra dicts.
        """
        anchor_lists = [self.space.anchors(user) for user in users]
        anchor_rows = self._oracle.rows(
            [self._node_id[node] for anchors in anchor_lists for node, _ in anchors]
        )
        rows = []
        for anchors in anchor_lists:
            combined: Optional[np.ndarray] = None
            for node, d0 in anchors:
                row = d0 + anchor_rows[self._node_id[node]]
                combined = row if combined is None else np.minimum(combined, row)
            rows.append(combined)
        return np.vstack(rows)

    # ------------------------------------------------------------------
    # Aggregate nearest neighbor
    # ------------------------------------------------------------------

    def gnn(
        self, users: Sequence[object], k: int = 1, agg: object = "max"
    ) -> list[tuple[float, Hashable]]:
        """The ``k`` best POI nodes by aggregate network distance.

        Drop-in for :func:`repro.network_ext.gnn.network_gnn` over this
        index's POI set: identical distances (the per-user aggregation
        runs in the same order with the same float operations) and the
        identical ``(distance, str(poi))`` tie-break.  ``agg`` is
        ``"max"`` / ``"sum"`` or an :class:`~repro.gnn.aggregate.Aggregate`.

        When the oracle's ALT mode is engaged the landmark-pruned path
        runs first; it either returns the provably identical answer or
        declines back to the exact full-row path below.
        """
        agg_name = getattr(agg, "value", agg)
        if agg_name not in ("max", "sum"):
            raise ValueError(f"unknown aggregate: {agg!r}")
        if not users:
            raise ValueError("user group must be non-empty")
        n_live = len(self)
        if not n_live:
            raise ValueError("POI set must be non-empty")
        if k <= 0:
            return []
        slot_ids, live_mask = self._poi_slots()
        kk = min(k, n_live)
        if kk < n_live and self._oracle.alt_active:
            result = self._gnn_alt(
                users, k, kk, agg_name, slot_ids, live_mask
            )
            if result is not None:
                return result
        per_user = self.user_node_distances(users)[:, slot_ids]
        scores = per_user[0].copy()
        if agg_name == "max":
            for i in range(1, len(users)):
                np.maximum(scores, per_user[i], out=scores)
        else:
            # Sequential adds in user order: bit-identical to the
            # reference's ``total += d`` accumulation.
            for i in range(1, len(users)):
                scores += per_user[i]
        # Each live slot's score is elementwise-identical to what a
        # freshly repacked index would compute for the same POI, so
        # masking dead slots to inf keeps the answer bit-identical.
        if live_mask is not None:
            scores = np.where(live_mask, scores, np.inf)
        if kk < n_live:
            part = np.argpartition(scores, kk - 1)[:kk]
            candidates = np.flatnonzero(scores <= scores[part].max())
        else:
            candidates = (
                np.arange(len(scores))
                if live_mask is None
                else np.flatnonzero(live_mask)
            )
        if live_mask is not None:
            candidates = candidates[live_mask[candidates]]
        scored = sorted(
            ((float(scores[i]), self._item(i)[0]) for i in candidates),
            key=lambda t: (t[0], str(t[1])),
        )
        return scored[:k]

    # ------------------------------------------------------------------
    # The ALT-pruned path
    # ------------------------------------------------------------------

    def _landmark_slot_columns(self, slot_ids: np.ndarray) -> np.ndarray:
        """``[L, n_slots]`` landmark distances gathered at the POI
        slots, cached per delta generation (``slot_ids`` identity)."""
        cache = self._lm_slot_cache
        if cache is None or cache[0] is not slot_ids:
            columns = self._oracle.landmark_matrix()[:, slot_ids]
            self._lm_slot_cache = (slot_ids, columns)
            return columns
        return cache[1]

    def _gnn_alt(
        self,
        users: Sequence[object],
        k: int,
        kk: int,
        agg_name: str,
        slot_ids: np.ndarray,
        live_mask: Optional[np.ndarray],
    ) -> Optional[list[tuple[float, Hashable]]]:
        """Landmark bounds -> bounded exact scoring, or ``None`` to
        decline onto the exact full-row path.

        Correctness sketch (the equivalence suite checks the claim on
        random graphs):

        * per user, ``LB(p) <= dist(user, p) <= UB(p)`` from the
          triangle inequality through every landmark, minimized over
          the user's anchors; aggregating bounds with the objective's
          own max/sum preserves both inequalities;
        * ``T`` = the ``kk``-th smallest aggregate UB, so at least
          ``kk`` POIs score ``<= T`` and every answer POI does;
        * any POI with aggregate score ``<= T`` has every per-user
          term ``<= T`` (max: trivially; sum: non-negative terms), so
          a bounded Dijkstra per anchor with cutoff ``~T`` settles the
          minimizing anchor path exactly — survivor scores at or below
          ``T`` are bit-identical to full-row scores, and masked-inf
          entries only inflate scores already strictly above ``T``;
        * survivors = ``{LB <= T + slack}`` — slack covering the
          bounds' float rounding — therefore contains every POI of
          the exact answer, scored identically, and the shared
          ``(score, str(poi))`` sort returns the identical list.
        """
        oracle = self._oracle
        anchor_lists = [self.space.anchors(user) for user in users]
        landmarks = oracle.landmark_matrix()
        lm_slots = self._landmark_slot_columns(slot_ids)
        lb: Optional[np.ndarray] = None
        ub: Optional[np.ndarray] = None
        for anchors in anchor_lists:
            user_lb: Optional[np.ndarray] = None
            user_ub: Optional[np.ndarray] = None
            for node, d0 in anchors:
                to_anchor = landmarks[:, self._node_id[node]][:, None]
                a_lb = d0 + np.abs(lm_slots - to_anchor).max(axis=0)
                a_ub = d0 + (lm_slots + to_anchor).min(axis=0)
                user_lb = (
                    a_lb if user_lb is None else np.minimum(user_lb, a_lb)
                )
                user_ub = (
                    a_ub if user_ub is None else np.minimum(user_ub, a_ub)
                )
            if lb is None:
                lb, ub = user_lb.copy(), user_ub.copy()
            elif agg_name == "max":
                np.maximum(lb, user_lb, out=lb)
                np.maximum(ub, user_ub, out=ub)
            else:
                lb += user_lb
                ub += user_ub
        if live_mask is not None:
            lb = np.where(live_mask, lb, np.inf)
            ub = np.where(live_mask, ub, np.inf)
        threshold = float(np.partition(ub, kk - 1)[kk - 1])
        if not np.isfinite(threshold):
            return None
        # LB and UB reach the same real value through *different* float
        # expressions (|a - b| vs a + b, then the aggregation chain), so
        # rounding can lift a true answer's LB a few ulps past the
        # UB-derived threshold.  The slack dominates that chain — one
        # rounding per op, < len(users) + 8 ops, each <= eps/2 relative
        # — by seven orders of magnitude while pruning power is
        # untouched (real distance gaps dwarf 1e-9 relative).
        cut = threshold + 1e-9 * (abs(threshold) + 1.0) * (len(users) + 8)
        survivors = np.flatnonzero(lb <= cut)
        oracle.note_alt(candidates=int(n_live_slots(live_mask, slot_ids)),
                        survivors=len(survivors))
        # Exact scores for the survivors only, off bounded rows.  The
        # cutoff is padded so a rounded ``d0 + d == cut`` sum can never
        # fall out of the settled ball (see ``padded_cutoff``).
        sub_cols = slot_ids[survivors]
        scores: Optional[np.ndarray] = None
        for anchors in anchor_lists:
            combined: Optional[np.ndarray] = None
            for node, d0 in anchors:
                node_id = self._node_id[node]
                full = oracle.cached_row(node_id)
                if full is not None:
                    row = d0 + full[sub_cols]
                else:
                    bounded = oracle.bounded_row(
                        node_id, padded_cutoff(cut, d0)
                    )
                    row = d0 + bounded[sub_cols]
                combined = (
                    row if combined is None else np.minimum(combined, row)
                )
            if scores is None:
                scores = combined.copy()
            elif agg_name == "max":
                np.maximum(scores, combined, out=scores)
            else:
                scores += combined
        scored = sorted(
            (
                (float(scores[j]), self._item(int(i))[0])
                for j, i in enumerate(survivors)
            ),
            key=lambda t: (t[0], str(t[1])),
        )
        return scored[:k]


def n_live_slots(
    live_mask: Optional[np.ndarray], slot_ids: np.ndarray
) -> int:
    """Live POI slots under ``live_mask`` (all of them when ``None``)."""
    return int(live_mask.sum()) if live_mask is not None else len(slot_ids)
