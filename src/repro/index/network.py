"""CSR-packed road-network POI index with bulk distance kernels.

The network analogue of the flat R-tree: where the Euclidean backend
packs POI coordinates into structure-of-arrays and answers GNN queries
with vectorized frontier kernels, this index packs the road graph into
CSR adjacency arrays (``indptr`` / ``indices`` / ``weights``), buckets
the POIs by the graph node they sit on, and answers aggregate
nearest-neighbor queries from *bulk* shortest-path distance rows:

* one Dijkstra run per distinct anchor node (SciPy's C implementation
  when available, a heap-based CSR traversal otherwise), cached for
  the lifetime of the index — users sliding along an edge keep their
  endpoint anchors, and POI updates never invalidate distances;
* per-user node-distance rows combined from the anchor rows with one
  ``np.minimum`` pass;
* POI scores gathered and aggregated across users in NumPy.

The results are bit-identical to the brute-force reference
(:func:`repro.network_ext.gnn.network_gnn`): the same additions in the
same order, the same min-over-anchors, the same ``(distance,
str(poi))`` tie-break.  ``benchmarks/test_micro_network_gnn.py`` holds
the kernel to a >=3x speedup over that reference at 10k-edge /
5k-POI scale.

POIs are graph nodes (real POI datasets are map-matched to the road
graph, matching the rest of :mod:`repro.network_ext`).
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.index.rtree import resolve_removals

try:  # SciPy is optional; the fallback kernel needs only NumPy.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised only without scipy
    _csr_matrix = None
    _csgraph_dijkstra = None


class NetworkIndex:
    """Edge-weighted road graph + node-bucketed POIs, query-ready.

    ``space`` is a :class:`repro.network_ext.space.NetworkSpace` (or
    anything exposing ``graph`` and ``anchors``); the graph is packed
    once at construction and assumed immutable afterwards, while the
    POI set mutates freely through :meth:`bulk_update` /
    :meth:`insert` / :meth:`delete`.
    """

    def __init__(
        self,
        space,
        pois: Sequence[Hashable] = (),
        payloads: Optional[Sequence[Any]] = None,
    ):
        self.space = space
        graph = space.graph
        self._nodes: list[Hashable] = list(graph.nodes)
        self._node_id: dict[Hashable, int] = {
            node: i for i, node in enumerate(self._nodes)
        }
        n = len(self._nodes)
        # CSR adjacency: both directions of every undirected edge.
        src: list[int] = []
        dst: list[int] = []
        wgt: list[float] = []
        for u, v, data in graph.edges(data=True):
            iu, iv = self._node_id[u], self._node_id[v]
            length = float(data["length"])
            src += [iu, iv]
            dst += [iv, iu]
            wgt += [length, length]
        src_arr = np.asarray(src, dtype=np.int64)
        order = np.argsort(src_arr, kind="stable")
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src_arr, minlength=n), out=self.indptr[1:])
        self.indices = np.asarray(dst, dtype=np.int64)[order]
        self.weights = np.asarray(wgt, dtype=np.float64)[order]
        self._csgraph = None  # scipy matrix view, built on first use
        self._dist_rows: dict[int, np.ndarray] = {}
        # POI store: (node, payload) items plus a node -> item-index
        # bucket map for O(1) per-node lookups.
        self._items: list[tuple[Hashable, Any]] = []
        self._buckets: dict[Hashable, list[int]] = {}
        self._poi_ids = np.empty(0, dtype=np.int64)
        if payloads is None:
            payloads = [None] * len(pois)
        if len(payloads) != len(pois):
            raise ValueError("payloads length does not match pois")
        self._install([(p, pl) for p, pl in zip(pois, payloads)])

    # ------------------------------------------------------------------
    # POI bookkeeping
    # ------------------------------------------------------------------

    def _install(self, items: list[tuple[Hashable, Any]]) -> None:
        for node, _ in items:
            if node not in self._node_id:
                raise ValueError(f"POI node {node!r} is not on the road graph")
        self._items = items
        self._buckets = {}
        for i, (node, _) in enumerate(items):
            self._buckets.setdefault(node, []).append(i)
        self._poi_ids = np.asarray(
            [self._node_id[node] for node, _ in items], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self._items)

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self.indices) // 2

    def poi_nodes(self) -> list[Hashable]:
        """The POI nodes in insertion order (duplicates preserved)."""
        return [node for node, _ in self._items]

    def items(self) -> list[tuple[Hashable, Any]]:
        """The live ``(node, payload)`` POI items, in insertion order."""
        return list(self._items)

    def pois_at(self, node: Hashable) -> list[Any]:
        """Payloads of the POIs bucketed on ``node``."""
        return [self._items[i][1] for i in self._buckets.get(node, ())]

    def insert(self, node: Hashable, payload: Any = None) -> None:
        self.bulk_update(adds=[(node, payload)])

    def delete(self, node: Hashable, payload: Any = None) -> bool:
        """Remove one POI at ``node`` (payload ``None`` matches any)."""
        try:
            self.bulk_update(removes=[(node, payload)])
        except KeyError:
            return False
        return True

    def bulk_update(
        self,
        adds: Sequence[tuple[Hashable, Any]] = (),
        removes: Sequence[tuple[Hashable, Any]] = (),
    ) -> None:
        """Apply a batch of POI inserts/deletes in one repacking.

        Same all-or-nothing contract as the Euclidean backends
        (:func:`repro.index.rtree.resolve_removals`): every removal is
        matched before anything mutates, and a ``KeyError`` for a
        missing entry leaves the index untouched.  Distance rows are
        unaffected — the road graph itself is immutable.
        """
        dead = set(resolve_removals(self._items, removes))
        kept = [item for i, item in enumerate(self._items) if i not in dead]
        kept.extend((node, payload) for node, payload in adds)
        self._install(kept)

    # ------------------------------------------------------------------
    # Bulk shortest-path distance kernels
    # ------------------------------------------------------------------

    def distance_row(self, node: Hashable) -> np.ndarray:
        """Distances from ``node`` to every graph node (cached)."""
        return self._row(self._node_id[node])

    def distance_map(self, node: Hashable) -> dict[Hashable, float]:
        """:meth:`distance_row` as a dict — a drop-in for the networkx
        map :meth:`NetworkSpace.node_distances` would compute, so the
        space can source its maps from the CSR kernel
        (:meth:`repro.network_ext.space.NetworkSpace.set_distance_provider`)
        instead of running a second Dijkstra per anchor."""
        return dict(zip(self._nodes, self.distance_row(node).tolist()))

    def _row(self, node_id: int) -> np.ndarray:
        row = self._dist_rows.get(node_id)
        if row is None:
            self._compute_rows([node_id])
            row = self._dist_rows[node_id]
        return row

    def _compute_rows(self, node_ids: Sequence[int]) -> None:
        """One multi-source dispatch for every uncached source at once."""
        missing = sorted({i for i in node_ids if i not in self._dist_rows})
        if not missing:
            return
        if _csgraph_dijkstra is not None:
            if self._csgraph is None:
                n = len(self._nodes)
                self._csgraph = _csr_matrix(
                    (self.weights, self.indices, self.indptr), shape=(n, n)
                )
            rows = np.atleast_2d(
                _csgraph_dijkstra(self._csgraph, indices=missing)
            )
            for node_id, row in zip(missing, rows):
                self._dist_rows[node_id] = row
        else:
            for node_id in missing:
                self._dist_rows[node_id] = self._dijkstra_python(node_id)

    def _dijkstra_python(self, source: int) -> np.ndarray:
        """Heap Dijkstra over the CSR arrays (no-SciPy fallback)."""
        indptr = self.indptr.tolist()
        indices = self.indices.tolist()
        weights = self.weights.tolist()
        dist = [float("inf")] * len(self._nodes)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return np.asarray(dist, dtype=np.float64)

    def user_node_distances(self, users: Sequence[object]) -> np.ndarray:
        """``[m, n_nodes]`` matrix of exact user-to-node distances.

        Row ``i`` is the anchor-combined distance map of user ``i``:
        ``min`` over the user's (node, offset) anchors of ``offset +
        row(node)`` — the same values the brute-force reference reads
        out of its per-anchor Dijkstra dicts.
        """
        anchor_lists = [self.space.anchors(user) for user in users]
        self._compute_rows(
            [self._node_id[node] for anchors in anchor_lists for node, _ in anchors]
        )
        rows = []
        for anchors in anchor_lists:
            combined: Optional[np.ndarray] = None
            for node, d0 in anchors:
                row = d0 + self._row(self._node_id[node])
                combined = row if combined is None else np.minimum(combined, row)
            rows.append(combined)
        return np.vstack(rows)

    # ------------------------------------------------------------------
    # Aggregate nearest neighbor
    # ------------------------------------------------------------------

    def gnn(
        self, users: Sequence[object], k: int = 1, agg: object = "max"
    ) -> list[tuple[float, Hashable]]:
        """The ``k`` best POI nodes by aggregate network distance.

        Drop-in for :func:`repro.network_ext.gnn.network_gnn` over this
        index's POI set: identical distances (the per-user aggregation
        runs in the same order with the same float operations) and the
        identical ``(distance, str(poi))`` tie-break.  ``agg`` is
        ``"max"`` / ``"sum"`` or an :class:`~repro.gnn.aggregate.Aggregate`.
        """
        agg_name = getattr(agg, "value", agg)
        if agg_name not in ("max", "sum"):
            raise ValueError(f"unknown aggregate: {agg!r}")
        if not users:
            raise ValueError("user group must be non-empty")
        if not self._items:
            raise ValueError("POI set must be non-empty")
        if k <= 0:
            return []
        per_user = self.user_node_distances(users)[:, self._poi_ids]
        scores = per_user[0].copy()
        if agg_name == "max":
            for i in range(1, len(users)):
                np.maximum(scores, per_user[i], out=scores)
        else:
            # Sequential adds in user order: bit-identical to the
            # reference's ``total += d`` accumulation.
            for i in range(1, len(users)):
                scores += per_user[i]
        kk = min(k, len(scores))
        if kk < len(scores):
            part = np.argpartition(scores, kk - 1)[:kk]
            candidates = np.flatnonzero(scores <= scores[part].max())
        else:
            candidates = np.arange(len(scores))
        scored = sorted(
            ((float(scores[i]), self._items[i][0]) for i in candidates),
            key=lambda t: (t[0], str(t[1])),
        )
        return scored[:k]
