"""A vectorized flat R-tree: STR packing into structure-of-arrays.

The object R-tree (:mod:`repro.index.rtree`) allocates one Python
object per node and per entry, so every traversal chases pointers and
re-enters the interpreter per child.  :class:`FlatRTree` stores the
same STR-packed tree in contiguous NumPy arrays instead:

* all leaf points live in one ``(n, 2)`` float64 array, permuted so
  each leaf owns a contiguous slice;
* each level of the tree is three parallel arrays — ``bounds``
  ``(k, 4)`` float64 MBRs plus ``start``/``count`` int64 ranges into
  the level below (or into the point array for leaves);
* there are no node objects at all; a node is an index into its
  level's arrays.

Every query — knn, range, circle range, aggregate GNN, candidate
pruning — runs through the shared kernels of
:mod:`repro.index.kernels`, which score or mask whole sibling sets per
NumPy call.

Delta maintenance
-----------------

The packing is static, but the POI set is not: production churn is
small batches at high frequency, and repacking 50k points per batch is
the wrong cost model.  Mutations therefore flow through a **delta
layer** over the packed epoch:

* deletions set a bit in a **tombstone mask** over the packed point
  array (the packing, its MBRs and its entry cache stay untouched —
  MBRs over a superset remain valid lower bounds);
* insertions land in a **buffered side arena** of unpacked points,
  scored brute-force by every kernel (the arena is small by
  construction, see below);
* every query answers over ``packed ∪ buffer − tombstones`` — the
  kernels take the live view from :meth:`delta_view`;
* when the delta debt (tombstones + arena entries) exceeds
  ``delta_fraction`` of the live size, :meth:`repack` folds the deltas
  into a fresh STR packing — so the arena stays a bounded fraction of
  the data and the O(n log n) rebuild is paid at amortized O(log n)
  per mutation, not per batch.

Per-item :meth:`insert` / :meth:`delete` route through the same deltas
(they are one-element batches), so nothing rebuilds O(n) for a single
point.  ``delta_fraction=0.0`` forces a repack after every batch —
the rebuild-per-batch behavior this layer replaces, kept reachable as
the baseline for the churn benchmarks.  Removal batches resolve
against an incrementally-maintained point -> live-ids map (the shared
:func:`repro.index.rtree.resolve_removals_indexed` contract), so a
small batch costs O(batch), not O(n).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index import kernels
from repro.index.rtree import Entry, resolve_removals_indexed

DEFAULT_FLAT_MAX_ENTRIES = 64

# Repack once deltas exceed this fraction of the live set.  1/4 keeps
# the brute-force arena small relative to the packed epoch (queries
# stay tree-shaped) while amortizing each O(n log n) repack over
# ~n/4 mutations.
DEFAULT_DELTA_FRACTION = 0.25


class _Level:
    """One tree level as parallel arrays (index 0 = leaves)."""

    __slots__ = ("bounds", "start", "count", "_cols")

    def __init__(self, bounds: np.ndarray, start: np.ndarray, count: np.ndarray):
        self.bounds = bounds
        self.start = start
        self.count = count
        self._cols: Optional[tuple[np.ndarray, ...]] = None

    def __len__(self) -> int:
        return len(self.start)

    def columns(self) -> tuple[np.ndarray, ...]:
        """``(x_lo, y_lo, x_hi, y_hi)`` as contiguous 1-D arrays.

        Gathers and ufuncs over contiguous columns beat strided slices
        of the ``(k, 4)`` bounds; built lazily, once per packing.
        """
        if self._cols is None:
            self._cols = tuple(
                np.ascontiguousarray(self.bounds[:, j]) for j in range(4)
            )
        return self._cols


def _str_partition(
    xs: np.ndarray, ys: np.ndarray, cap: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-Tile-Recursive grouping of one level.

    Returns ``(order, boundaries)``: a permutation placing the items in
    slab-then-y order, and node boundaries such that node ``j`` covers
    ``order[boundaries[j] : boundaries[j + 1]]``.
    """
    n = len(xs)
    n_nodes = math.ceil(n / cap)
    slab_count = max(1, math.ceil(math.sqrt(n_nodes)))
    per_slab = math.ceil(n / slab_count)
    xorder = np.argsort(xs, kind="stable")
    slab = np.empty(n, dtype=np.int64)
    slab[xorder] = np.arange(n, dtype=np.int64) // per_slab
    order = np.lexsort((ys, slab))
    boundaries: list[int] = []
    for s in range(0, n, per_slab):
        boundaries.extend(range(s, min(s + per_slab, n), cap))
    boundaries.append(n)
    return order, np.asarray(boundaries, dtype=np.int64)


class FlatRTree:
    """STR-packed R-tree over points with a tombstone/arena delta layer.

    Point ids are positions in the packed array (``0 .. n_packed-1``,
    tombstoned ids never surface from a query) followed by arena slots
    (``n_packed ..``).  ``delta_fraction`` tunes the repack policy —
    smaller folds deltas sooner (0.0 = repack every batch, the
    rebuild-per-batch baseline), larger lets the arena grow.
    """

    backend_name = "flat"

    def __init__(
        self,
        max_entries: int = DEFAULT_FLAT_MAX_ENTRIES,
        delta_fraction: float = DEFAULT_DELTA_FRACTION,
    ):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        if delta_fraction < 0.0:
            raise ValueError("delta_fraction must be >= 0")
        self.max_entries = max_entries
        self.delta_fraction = delta_fraction
        # Maintenance counters: full STR packings (builds) vs delta
        # batches absorbed without one.  The churn benchmarks and the
        # cluster's one-publish-per-batch gate read these.
        self.build_count = 0
        self.delta_batches = 0
        self._pts = np.empty((0, 2), dtype=np.float64)
        self._payloads: list[Any] = []
        self._levels: list[_Level] = []
        self._reset_deltas()
        self._entry_cache: Optional[list[Entry]] = None
        self._pt_cols: Optional[tuple[np.ndarray, np.ndarray]] = None

    def _reset_deltas(self) -> None:
        self._tomb = np.zeros(len(self._pts), dtype=bool)
        self._n_dead = 0
        self._buf_xy: list[tuple[float, float]] = []
        self._buf_payloads: list[Any] = []
        self._buf_alive: list[bool] = []
        self._n_buf_dead = 0
        # Point -> live ids (packed then arena, insertion order); built
        # lazily on the first removal, maintained incrementally after.
        self._live_map: Optional[dict[Point, list[int]]] = None
        self._delta_cache: Optional[
            tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]
        ] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: Sequence[Point],
        payloads: Optional[Sequence[Any]] = None,
        max_entries: int = DEFAULT_FLAT_MAX_ENTRIES,
        delta_fraction: float = DEFAULT_DELTA_FRACTION,
    ) -> "FlatRTree":
        tree = cls(max_entries=max_entries, delta_fraction=delta_fraction)
        if payloads is None:
            payloads = list(range(len(points)))
        elif len(payloads) != len(points):
            raise ValueError("payloads length must match points length")
        pts = np.asarray([[p.x, p.y] for p in points], dtype=np.float64)
        pts = pts.reshape(len(points), 2)
        tree._rebuild(pts, list(payloads))
        return tree

    def _rebuild(self, pts: np.ndarray, payloads: list[Any]) -> None:
        self._entry_cache = None
        self._pt_cols = None
        self.build_count += 1
        n = len(pts)
        if n == 0:
            self._pts = np.empty((0, 2), dtype=np.float64)
            self._payloads = []
            self._levels = []
            self._reset_deltas()
            return
        cap = self.max_entries
        order, bnd = _str_partition(pts[:, 0], pts[:, 1], cap)
        self._pts = np.ascontiguousarray(pts[order])
        self._payloads = [payloads[i] for i in order]
        starts = bnd[:-1]
        counts = np.diff(bnd)
        bounds = np.empty((len(starts), 4), dtype=np.float64)
        bounds[:, 0] = np.minimum.reduceat(self._pts[:, 0], starts)
        bounds[:, 1] = np.minimum.reduceat(self._pts[:, 1], starts)
        bounds[:, 2] = np.maximum.reduceat(self._pts[:, 0], starts)
        bounds[:, 3] = np.maximum.reduceat(self._pts[:, 1], starts)
        self._levels = [_Level(bounds, starts, counts)]
        while len(self._levels[-1]) > 1:
            low = self._levels[-1]
            cx = (low.bounds[:, 0] + low.bounds[:, 2]) / 2.0
            cy = (low.bounds[:, 1] + low.bounds[:, 3]) / 2.0
            order, bnd = _str_partition(cx, cy, cap)
            # Permute the lower level so each parent's children are a
            # contiguous run; the ranges it stores still point one level
            # further down and survive the permutation untouched.
            low.bounds = np.ascontiguousarray(low.bounds[order])
            low.start = low.start[order]
            low.count = low.count[order]
            starts = bnd[:-1]
            counts = np.diff(bnd)
            pb = np.empty((len(starts), 4), dtype=np.float64)
            pb[:, 0] = np.minimum.reduceat(low.bounds[:, 0], starts)
            pb[:, 1] = np.minimum.reduceat(low.bounds[:, 1], starts)
            pb[:, 2] = np.maximum.reduceat(low.bounds[:, 2], starts)
            pb[:, 3] = np.maximum.reduceat(low.bounds[:, 3], starts)
            self._levels.append(_Level(pb, starts, counts))
        self._reset_deltas()

    # ------------------------------------------------------------------
    # Dynamic maintenance (delta-based)
    # ------------------------------------------------------------------

    def insert(self, point: Point, payload: Any = None) -> None:
        """Buffer one insertion (a one-element delta batch)."""
        self.bulk_update(adds=[(point, payload)])

    def delete(self, point: Point, payload: Any = None) -> bool:
        """Tombstone one entry matching ``point`` (and ``payload``)."""
        try:
            self.bulk_update(removes=[(point, payload)])
        except KeyError:
            return False
        return True

    def bulk_update(
        self,
        adds: Sequence[tuple[Point, Any]] = (),
        removes: Sequence[tuple[Point, Any]] = (),
    ) -> None:
        """Apply a batch of inserts and deletes through the delta layer.

        Removals tombstone packed (or arena) slots and insertions land
        in the arena; the packed epoch is untouched until the delta
        debt crosses the :meth:`repack` threshold.  All removals are
        resolved (shared :func:`repro.index.rtree.resolve_removals_indexed`
        contract) before anything mutates, so a ``KeyError`` for a
        missing entry leaves the index untouched.
        """
        victims = self._resolve_live_removals(removes)
        n_packed = len(self._pts)
        for i in victims:
            if i < n_packed:
                self._tomb[i] = True
                self._n_dead += 1
            else:
                self._buf_alive[i - n_packed] = False
                self._n_buf_dead += 1
            self._drop_from_live_map(i)
        for point, payload in adds:
            slot = n_packed + len(self._buf_xy)
            self._buf_xy.append((point.x, point.y))
            self._buf_payloads.append(payload)
            self._buf_alive.append(True)
            if self._live_map is not None:
                self._live_map.setdefault(point, []).append(slot)
            if self._entry_cache is not None:
                self._entry_cache.append(Entry(point, payload))
        self._delta_cache = None
        self.delta_batches += 1
        self._maybe_repack()

    def repack(self) -> None:
        """Fold all deltas into a fresh STR packing (O(n log n))."""
        keep = ~self._tomb
        parts = [self._pts[keep]]
        payloads = [
            pl for pl, alive in zip(self._payloads, keep.tolist()) if alive
        ]
        live_buf = [
            xy for xy, alive in zip(self._buf_xy, self._buf_alive) if alive
        ]
        if live_buf:
            parts.append(np.asarray(live_buf, dtype=np.float64))
        payloads.extend(
            pl for pl, alive in zip(self._buf_payloads, self._buf_alive) if alive
        )
        self._rebuild(np.vstack(parts), payloads)

    def _maybe_repack(self) -> None:
        deltas = self._n_dead + len(self._buf_xy)
        if deltas and deltas > self.delta_fraction * max(len(self), 1):
            self.repack()

    def delta_view(
        self,
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        """The kernels' live view: ``(alive_mask, arena_pts, arena_ids)``.

        ``alive_mask`` is a bool array over the packed points, or
        ``None`` when nothing is tombstoned (the fast path skips the
        gather); ``arena_pts`` / ``arena_ids`` are the live buffered
        points and their absolute ids, or ``None`` when the arena is
        empty.  Cached until the next delta batch.
        """
        if self._delta_cache is None:
            alive = None if self._n_dead == 0 else ~self._tomb
            buf_pts = buf_ids = None
            if len(self._buf_xy) > self._n_buf_dead:
                n_packed = len(self._pts)
                ids = [
                    n_packed + j
                    for j, ok in enumerate(self._buf_alive)
                    if ok
                ]
                buf_ids = np.asarray(ids, dtype=np.int64)
                buf_pts = np.asarray(
                    [self._buf_xy[i - n_packed] for i in ids], dtype=np.float64
                )
            self._delta_cache = (alive, buf_pts, buf_ids)
        return self._delta_cache

    def delta_debt(self) -> int:
        """Tombstones + arena slots — what the next repack would fold."""
        return self._n_dead + len(self._buf_xy)

    def _payload_of(self, i: int) -> Any:
        n_packed = len(self._pts)
        if i < n_packed:
            return self._payloads[i]
        return self._buf_payloads[i - n_packed]

    def _ensure_live_map(self) -> dict[Point, list[int]]:
        if self._live_map is None:
            cache = self._materialized()
            live_map: dict[Point, list[int]] = {}
            for i in self._live_ids():
                live_map.setdefault(cache[i].point, []).append(i)
            self._live_map = live_map
        return self._live_map

    def _drop_from_live_map(self, i: int) -> None:
        if self._live_map is None:
            return
        entry = self._materialized()[i]
        ids = self._live_map.get(entry.point)
        if ids is not None:
            ids.remove(i)
            if not ids:
                del self._live_map[entry.point]

    def _resolve_live_removals(
        self, removes: Sequence[tuple[Point, Any]]
    ) -> list[int]:
        if not removes:
            return []
        live = self._ensure_live_map()
        return resolve_removals_indexed(
            lambda p: list(live.get(p, ())), self._payload_of, removes
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self._pts)
            - self._n_dead
            + len(self._buf_xy)
            - self._n_buf_dead
        )

    def _materialized(self) -> list[Entry]:
        """Entry objects for every id slot (packed + arena, dead included).

        Queries return a handful of entries out of tens of thousands of
        points; materializing the whole set lazily (and only once per
        packing) keeps the per-query cost at list indexing instead of
        object churn.  The cache is id-aligned and *incremental*:
        tombstones leave it untouched and arena appends extend it, so
        churn batches never invalidate it — only a repack does.
        """
        if self._entry_cache is None:
            self._entry_cache = [
                Entry(Point(x, y), pl)
                for (x, y), pl in zip(self._pts.tolist(), self._payloads)
            ]
            self._entry_cache.extend(
                Entry(Point(x, y), pl)
                for (x, y), pl in zip(self._buf_xy, self._buf_payloads)
            )
        return self._entry_cache

    def _entry(self, i: int) -> Entry:
        return self._materialized()[i]

    def _live_ids(self) -> list[int]:
        """Live id slots, packed (tree) order then arena order."""
        n_packed = len(self._pts)
        ids: list[int] = (
            np.flatnonzero(~self._tomb).tolist()
            if self._n_dead
            else list(range(n_packed))
        )
        ids.extend(
            n_packed + j for j, ok in enumerate(self._buf_alive) if ok
        )
        return ids

    def _coords(self, idx: np.ndarray) -> np.ndarray:
        """``(len(idx), 2)`` coordinates for mixed packed/arena ids."""
        n_packed = len(self._pts)
        if not len(self._buf_xy) or (idx < n_packed).all():
            return self._pts[idx]
        out = np.empty((len(idx), 2), dtype=np.float64)
        packed = idx < n_packed
        out[packed] = self._pts[idx[packed]]
        out[~packed] = np.asarray(
            [self._buf_xy[i - n_packed] for i in idx[~packed].tolist()],
            dtype=np.float64,
        )
        return out

    def point_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """``(xs, ys)`` of the packed points as contiguous 1-D arrays."""
        if self._pt_cols is None:
            self._pt_cols = (
                np.ascontiguousarray(self._pts[:, 0]),
                np.ascontiguousarray(self._pts[:, 1]),
            )
        return self._pt_cols

    def entries(self) -> Iterator[Entry]:
        """All live leaf entries, packed (tree) order then arena order."""
        cache = self._materialized()
        return (cache[i] for i in self._live_ids())

    def points(self) -> list[Point]:
        return [e.point for e in self.entries()]

    def height(self) -> int:
        return max(1, len(self._levels))

    def validate(self) -> None:
        """Check packing + delta invariants; raises AssertionError on breach."""
        if not self._levels:
            if len(self._pts) != 0:
                raise AssertionError("points without levels")
        for li, lvl in enumerate(self._levels):
            below_n = len(self._pts) if li == 0 else len(self._levels[li - 1])
            covered = 0
            for j in range(len(lvl)):
                s, c = int(lvl.start[j]), int(lvl.count[j])
                if c < 1 or s < 0 or s + c > below_n:
                    raise AssertionError(f"bad child range at level {li}")
                covered += c
                if li == 0:
                    seg = self._pts[s : s + c]
                    lo = seg.min(axis=0)
                    hi = seg.max(axis=0)
                else:
                    seg = self._levels[li - 1].bounds[s : s + c]
                    lo = seg[:, :2].min(axis=0)
                    hi = seg[:, 2:].max(axis=0)
                if not (
                    np.all(lvl.bounds[j, :2] <= lo) and np.all(lvl.bounds[j, 2:] >= hi)
                ):
                    raise AssertionError(f"child escapes MBR at level {li}")
            if covered != below_n:
                raise AssertionError(f"level {li} does not cover the level below")
        if self._levels and len(self._levels[-1]) != 1:
            raise AssertionError("top level must hold exactly the root")
        if len(self._payloads) != len(self._pts):
            raise AssertionError("payloads out of sync with points")
        if len(self._tomb) != len(self._pts):
            raise AssertionError("tombstone mask out of sync with points")
        if self._n_dead != int(self._tomb.sum()):
            raise AssertionError("tombstone count out of sync with mask")
        if not (
            len(self._buf_xy) == len(self._buf_payloads) == len(self._buf_alive)
        ):
            raise AssertionError("arena arrays out of sync")
        if self._n_buf_dead != self._buf_alive.count(False):
            raise AssertionError("arena tombstone count out of sync")
        if self._live_map is not None:
            mapped = sorted(i for ids in self._live_map.values() for i in ids)
            if mapped != sorted(self._live_ids()):
                raise AssertionError("live map out of sync with live ids")

    # ------------------------------------------------------------------
    # Nearest-neighbor and range primitives
    # ------------------------------------------------------------------

    def incremental_nearest(self, query: Point) -> Iterator[Entry]:
        """Live leaf entries in increasing distance from ``query``.

        Scored in squared-distance space — the ordering is identical
        and no square root is ever taken.
        """
        qx, qy = query.x, query.y
        stream = kernels.best_first(
            self,
            lambda b: kernels.min_dists_sq(b, qx, qy),
            lambda p: kernels.point_dists_sq(p, qx, qy),
        )
        cache = self._materialized()
        for _, i in stream:
            yield cache[i]

    def knn(self, query: Point, k: int) -> list[Entry]:
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_nearest(query), k))

    def knn_many(self, queries: Sequence[Point], k: int) -> list[list[Entry]]:
        """k-NN for many query points in one vectorized pass."""
        if k <= 0 or not queries:
            return [[] for _ in queries]
        U = np.asarray([[[q.x, q.y]] for q in queries], dtype=np.float64)
        out = kernels.gnn_batch(self, U, k, "max")
        if out is None:
            return [self.knn(q, k) for q in queries]
        cache = self._materialized()
        return [[cache[i] for i in row] for row in out[1].tolist()]

    def nearest(self, query: Point) -> Entry | None:
        result = self.knn(query, 1)
        return result[0] if result else None

    def range_many(self, windows: Sequence[Rect]) -> list[list[Entry]]:
        """Window queries for many windows in one frontier traversal."""
        W = np.asarray(
            [[w.x_lo, w.y_lo, w.x_hi, w.y_hi] for w in windows], dtype=np.float64
        ).reshape(len(windows), 4)
        qid, pid = kernels.range_batch(self, W)
        cache = self._materialized()
        # qid is sorted by window; slice each window's run out of pid.
        cuts = np.searchsorted(qid, np.arange(len(windows) + 1))
        pid = pid.tolist()
        get = cache.__getitem__
        return [
            list(map(get, pid[lo:hi])) for lo, hi in zip(cuts[:-1], cuts[1:])
        ]

    def range_query(self, window: Rect) -> list[Entry]:
        """All live entries whose point lies inside ``window``."""
        idx = kernels.pruned_scan(
            self,
            lambda b: ~(
                (b[:, 2] < window.x_lo)
                | (b[:, 0] > window.x_hi)
                | (b[:, 3] < window.y_lo)
                | (b[:, 1] > window.y_hi)
            ),
            lambda p: (
                (p[:, 0] >= window.x_lo)
                & (p[:, 0] <= window.x_hi)
                & (p[:, 1] >= window.y_lo)
                & (p[:, 1] <= window.y_hi)
            ),
        )
        cache = self._materialized()
        return [cache[i] for i in idx.tolist()]

    def circle_range_query(self, center: Point, radius: float) -> list[Entry]:
        """All live entries within ``radius`` of ``center``."""
        cx, cy = center.x, center.y
        idx = kernels.pruned_scan(
            self,
            lambda b: kernels.min_dists(b, cx, cy) <= radius,
            lambda p: kernels.point_dists(p, cx, cy) <= radius,
        )
        cache = self._materialized()
        return [cache[i] for i in idx.tolist()]

    # ------------------------------------------------------------------
    # Aggregate (group) nearest neighbor
    # ------------------------------------------------------------------

    def incremental_gnn(
        self, users: Sequence[Point], agg: str = "max"
    ) -> Iterator[tuple[float, Entry]]:
        """Yield ``(aggregate_distance, entry)`` in increasing order."""
        if not users:
            raise ValueError("user group must be non-empty")
        U = np.asarray([[u.x, u.y] for u in users], dtype=np.float64)
        if agg == "max":
            # max is monotone under squaring: search in squared space
            # (one sqrt per yielded result instead of m hypots per item).
            node_bound = lambda b: kernels.min_dists_sq_multi(b, U).max(axis=0)
            point_score = lambda p: kernels.point_dists_sq_multi(p, U).max(axis=1)
            finish = math.sqrt
        elif agg == "sum":
            node_bound = lambda b: kernels.min_dists_multi(b, U).sum(axis=0)
            point_score = lambda p: kernels.point_dists_multi(p, U).sum(axis=1)
            finish = lambda s: s
        else:
            raise ValueError(f"unknown aggregate: {agg!r}")
        cache = self._materialized()
        for score, i in kernels.best_first(self, node_bound, point_score):
            yield finish(score), cache[i]

    def gnn(
        self, users: Sequence[Point], k: int = 1, agg: str = "max"
    ) -> list[tuple[float, Entry]]:
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_gnn(users, agg), k))

    def gnn_many(
        self, groups: Sequence[Sequence[Point]], k: int = 1, agg: str = "max"
    ) -> list[list[tuple[float, Entry]]]:
        """k-GNN for many equal-size groups in one vectorized pass.

        Ragged group sizes (or a declined batch kernel) fall back to
        the per-group search; results are identical modulo ties.
        """
        if not groups:
            return []
        if agg not in ("max", "sum"):
            raise ValueError(f"unknown aggregate: {agg!r}")
        sizes = {len(g) for g in groups}
        out = None
        if len(sizes) == 1 and 0 not in sizes and k > 0:
            U = np.asarray(
                [[[u.x, u.y] for u in g] for g in groups], dtype=np.float64
            )
            out = kernels.gnn_batch(self, U, k, agg)
        if out is None:
            return [self.gnn(g, k, agg) for g in groups]
        scores, ids = out
        cache = self._materialized()
        return [
            [(s, cache[i]) for s, i in zip(srow, irow)]
            for srow, irow in zip(scores.tolist(), ids.tolist())
        ]

    # ------------------------------------------------------------------
    # Pruned candidate scans (Theorems 3 and 6 primitives)
    # ------------------------------------------------------------------

    def intersect_balls(
        self,
        centers: Sequence[Point],
        radii: Sequence[float],
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points within ``radii[i]`` of ``centers[i]`` for EVERY i.

        A node survives only if it intersects every ball — the MBR
        pruning rule of Theorem 3 (Fig. 10).
        """
        C = np.asarray([[c.x, c.y] for c in centers], dtype=np.float64)
        r = np.asarray(radii, dtype=np.float64)
        idx = kernels.pruned_scan(
            self,
            lambda b: np.all(kernels.min_dists_multi(b, C) <= r[:, None], axis=0),
            lambda p: np.all(kernels.point_dists_multi(p, C) <= r[None, :], axis=1),
            stats,
        )
        return self._points_excluding(idx, exclude)

    def within_dist_sum(
        self,
        centers: Sequence[Point],
        threshold: float,
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points whose summed distance to ``centers`` is <= threshold.

        The MBR analogue sums per-user min-distances (Theorem 6).
        """
        C = np.asarray([[c.x, c.y] for c in centers], dtype=np.float64)
        idx = kernels.pruned_scan(
            self,
            lambda b: kernels.min_dists_multi(b, C).sum(axis=0) <= threshold,
            lambda p: kernels.point_dists_multi(p, C).sum(axis=1) <= threshold,
            stats,
        )
        return self._points_excluding(idx, exclude)

    def scan(self, exclude: Optional[Point] = None, stats=None) -> list[Point]:
        """All live points (minus ``exclude``) via a counted traversal."""
        ones = lambda a: np.ones(len(a), dtype=bool)
        idx = kernels.pruned_scan(self, ones, ones, stats)
        return self._points_excluding(idx, exclude)

    def _points_excluding(self, idx: np.ndarray, exclude: Optional[Point]) -> list[Point]:
        if exclude is not None and idx.size:
            rows = self._coords(idx)
            keep = ~((rows[:, 0] == exclude.x) & (rows[:, 1] == exclude.y))
            idx = idx[keep]
        cache = self._materialized()
        return [cache[i].point for i in idx.tolist()]
