"""A vectorized flat R-tree: STR packing into structure-of-arrays.

The object R-tree (:mod:`repro.index.rtree`) allocates one Python
object per node and per entry, so every traversal chases pointers and
re-enters the interpreter per child.  :class:`FlatRTree` stores the
same STR-packed tree in contiguous NumPy arrays instead:

* all leaf points live in one ``(n, 2)`` float64 array, permuted so
  each leaf owns a contiguous slice;
* each level of the tree is three parallel arrays — ``bounds``
  ``(k, 4)`` float64 MBRs plus ``start``/``count`` int64 ranges into
  the level below (or into the point array for leaves);
* there are no node objects at all; a node is an index into its
  level's arrays.

Every query — knn, range, circle range, aggregate GNN, candidate
pruning — runs through the two shared kernels of
:mod:`repro.index.kernels`, which score or mask whole sibling sets per
NumPy call.  The tree is static-optimized: :meth:`insert` and
:meth:`delete` are supported for API parity with the object backend
but rebuild the packing (O(n log n)); workloads with heavy churn
should prefer ``backend="object"`` via the factory in
:mod:`repro.index.backend`.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index import kernels
from repro.index.rtree import Entry, resolve_removals

DEFAULT_FLAT_MAX_ENTRIES = 64


class _Level:
    """One tree level as parallel arrays (index 0 = leaves)."""

    __slots__ = ("bounds", "start", "count", "_cols")

    def __init__(self, bounds: np.ndarray, start: np.ndarray, count: np.ndarray):
        self.bounds = bounds
        self.start = start
        self.count = count
        self._cols: Optional[tuple[np.ndarray, ...]] = None

    def __len__(self) -> int:
        return len(self.start)

    def columns(self) -> tuple[np.ndarray, ...]:
        """``(x_lo, y_lo, x_hi, y_hi)`` as contiguous 1-D arrays.

        Gathers and ufuncs over contiguous columns beat strided slices
        of the ``(k, 4)`` bounds; built lazily, once per packing.
        """
        if self._cols is None:
            self._cols = tuple(
                np.ascontiguousarray(self.bounds[:, j]) for j in range(4)
            )
        return self._cols


def _str_partition(
    xs: np.ndarray, ys: np.ndarray, cap: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-Tile-Recursive grouping of one level.

    Returns ``(order, boundaries)``: a permutation placing the items in
    slab-then-y order, and node boundaries such that node ``j`` covers
    ``order[boundaries[j] : boundaries[j + 1]]``.
    """
    n = len(xs)
    n_nodes = math.ceil(n / cap)
    slab_count = max(1, math.ceil(math.sqrt(n_nodes)))
    per_slab = math.ceil(n / slab_count)
    xorder = np.argsort(xs, kind="stable")
    slab = np.empty(n, dtype=np.int64)
    slab[xorder] = np.arange(n, dtype=np.int64) // per_slab
    order = np.lexsort((ys, slab))
    boundaries: list[int] = []
    for s in range(0, n, per_slab):
        boundaries.extend(range(s, min(s + per_slab, n), cap))
    boundaries.append(n)
    return order, np.asarray(boundaries, dtype=np.int64)


class FlatRTree:
    """STR-packed R-tree over points with implicit array-backed nodes."""

    backend_name = "flat"

    def __init__(self, max_entries: int = DEFAULT_FLAT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self._pts = np.empty((0, 2), dtype=np.float64)
        self._payloads: list[Any] = []
        self._levels: list[_Level] = []
        self._entry_cache: Optional[list[Entry]] = None
        self._pt_cols: Optional[tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: Sequence[Point],
        payloads: Optional[Sequence[Any]] = None,
        max_entries: int = DEFAULT_FLAT_MAX_ENTRIES,
    ) -> "FlatRTree":
        tree = cls(max_entries=max_entries)
        if payloads is None:
            payloads = list(range(len(points)))
        elif len(payloads) != len(points):
            raise ValueError("payloads length must match points length")
        pts = np.asarray([[p.x, p.y] for p in points], dtype=np.float64)
        pts = pts.reshape(len(points), 2)
        tree._rebuild(pts, list(payloads))
        return tree

    def _rebuild(self, pts: np.ndarray, payloads: list[Any]) -> None:
        self._entry_cache = None
        self._pt_cols = None
        n = len(pts)
        if n == 0:
            self._pts = np.empty((0, 2), dtype=np.float64)
            self._payloads = []
            self._levels = []
            return
        cap = self.max_entries
        order, bnd = _str_partition(pts[:, 0], pts[:, 1], cap)
        self._pts = np.ascontiguousarray(pts[order])
        self._payloads = [payloads[i] for i in order]
        starts = bnd[:-1]
        counts = np.diff(bnd)
        bounds = np.empty((len(starts), 4), dtype=np.float64)
        bounds[:, 0] = np.minimum.reduceat(self._pts[:, 0], starts)
        bounds[:, 1] = np.minimum.reduceat(self._pts[:, 1], starts)
        bounds[:, 2] = np.maximum.reduceat(self._pts[:, 0], starts)
        bounds[:, 3] = np.maximum.reduceat(self._pts[:, 1], starts)
        self._levels = [_Level(bounds, starts, counts)]
        while len(self._levels[-1]) > 1:
            low = self._levels[-1]
            cx = (low.bounds[:, 0] + low.bounds[:, 2]) / 2.0
            cy = (low.bounds[:, 1] + low.bounds[:, 3]) / 2.0
            order, bnd = _str_partition(cx, cy, cap)
            # Permute the lower level so each parent's children are a
            # contiguous run; the ranges it stores still point one level
            # further down and survive the permutation untouched.
            low.bounds = np.ascontiguousarray(low.bounds[order])
            low.start = low.start[order]
            low.count = low.count[order]
            starts = bnd[:-1]
            counts = np.diff(bnd)
            pb = np.empty((len(starts), 4), dtype=np.float64)
            pb[:, 0] = np.minimum.reduceat(low.bounds[:, 0], starts)
            pb[:, 1] = np.minimum.reduceat(low.bounds[:, 1], starts)
            pb[:, 2] = np.maximum.reduceat(low.bounds[:, 2], starts)
            pb[:, 3] = np.maximum.reduceat(low.bounds[:, 3], starts)
            self._levels.append(_Level(pb, starts, counts))

    # ------------------------------------------------------------------
    # Dynamic maintenance (rebuild-based)
    # ------------------------------------------------------------------

    def insert(self, point: Point, payload: Any = None) -> None:
        pts = np.vstack([self._pts, [[point.x, point.y]]])
        self._rebuild(pts, self._payloads + [payload])

    def delete(self, point: Point, payload: Any = None) -> bool:
        """Remove one entry matching ``point`` (and ``payload`` if given)."""
        victim = self._find(point, payload)
        if victim is None:
            return False
        pts = np.delete(self._pts, victim, axis=0)
        payloads = self._payloads[:victim] + self._payloads[victim + 1 :]
        self._rebuild(pts, payloads)
        return True

    def _find(self, point: Point, payload: Any) -> Optional[int]:
        hits = np.flatnonzero(
            (self._pts[:, 0] == point.x) & (self._pts[:, 1] == point.y)
        )
        for i in hits.tolist():
            if payload is None or self._payloads[i] == payload:
                return i
        return None

    def bulk_update(
        self,
        adds: Sequence[tuple[Point, Any]] = (),
        removes: Sequence[tuple[Point, Any]] = (),
    ) -> None:
        """Apply many inserts and deletes with ONE repacking rebuild.

        This is the churn-friendly path for this backend: per-item
        :meth:`insert` / :meth:`delete` each rebuild the whole packing,
        a batch pays that cost once.  ``removes`` pairs a point with a
        payload (None matches any); all removals are resolved (shared
        :func:`repro.index.rtree.resolve_removals` contract) before
        anything mutates, so a ``KeyError`` for a missing entry leaves
        the tree untouched.
        """
        snapshot = [(e.point, e.payload) for e in self._materialized()]
        dead = set(resolve_removals(snapshot, removes))
        keep = [i for i in range(len(self._pts)) if i not in dead]
        new_pts = [self._pts[keep]] if keep else []
        new_payloads = [self._payloads[i] for i in keep]
        if adds:
            new_pts.append(
                np.asarray([[p.x, p.y] for p, _ in adds], dtype=np.float64)
            )
            new_payloads.extend(pl for _, pl in adds)
        pts = (
            np.vstack(new_pts) if new_pts else np.empty((0, 2), dtype=np.float64)
        )
        self._rebuild(pts, new_payloads)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pts)

    def _materialized(self) -> list[Entry]:
        """Entry objects for every packed point, built once per packing.

        Queries return a handful of entries out of tens of thousands of
        points; materializing the whole set lazily (and only once) keeps
        the per-query cost at list indexing instead of object churn.
        """
        if self._entry_cache is None:
            self._entry_cache = [
                Entry(Point(x, y), pl)
                for (x, y), pl in zip(self._pts.tolist(), self._payloads)
            ]
        return self._entry_cache

    def _entry(self, i: int) -> Entry:
        return self._materialized()[i]

    def point_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """``(xs, ys)`` of the packed points as contiguous 1-D arrays."""
        if self._pt_cols is None:
            self._pt_cols = (
                np.ascontiguousarray(self._pts[:, 0]),
                np.ascontiguousarray(self._pts[:, 1]),
            )
        return self._pt_cols

    def entries(self) -> Iterator[Entry]:
        """All leaf entries, in packed (tree) order."""
        return iter(self._materialized())

    def points(self) -> list[Point]:
        return [e.point for e in self._materialized()]

    def height(self) -> int:
        return max(1, len(self._levels))

    def validate(self) -> None:
        """Check packing invariants; raises AssertionError on breach."""
        if not self._levels:
            if len(self._pts) != 0:
                raise AssertionError("points without levels")
            return
        for li, lvl in enumerate(self._levels):
            below_n = len(self._pts) if li == 0 else len(self._levels[li - 1])
            covered = 0
            for j in range(len(lvl)):
                s, c = int(lvl.start[j]), int(lvl.count[j])
                if c < 1 or s < 0 or s + c > below_n:
                    raise AssertionError(f"bad child range at level {li}")
                covered += c
                if li == 0:
                    seg = self._pts[s : s + c]
                    lo = seg.min(axis=0)
                    hi = seg.max(axis=0)
                else:
                    seg = self._levels[li - 1].bounds[s : s + c]
                    lo = seg[:, :2].min(axis=0)
                    hi = seg[:, 2:].max(axis=0)
                if not (
                    np.all(lvl.bounds[j, :2] <= lo) and np.all(lvl.bounds[j, 2:] >= hi)
                ):
                    raise AssertionError(f"child escapes MBR at level {li}")
            if covered != below_n:
                raise AssertionError(f"level {li} does not cover the level below")
        if len(self._levels[-1]) != 1:
            raise AssertionError("top level must hold exactly the root")
        if len(self._payloads) != len(self._pts):
            raise AssertionError("payloads out of sync with points")

    # ------------------------------------------------------------------
    # Nearest-neighbor and range primitives
    # ------------------------------------------------------------------

    def incremental_nearest(self, query: Point) -> Iterator[Entry]:
        """Leaf entries in increasing distance from ``query``.

        Scored in squared-distance space — the ordering is identical
        and no square root is ever taken.
        """
        qx, qy = query.x, query.y
        stream = kernels.best_first(
            self,
            lambda b: kernels.min_dists_sq(b, qx, qy),
            lambda p: kernels.point_dists_sq(p, qx, qy),
        )
        cache = self._materialized()
        for _, i in stream:
            yield cache[i]

    def knn(self, query: Point, k: int) -> list[Entry]:
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_nearest(query), k))

    def knn_many(self, queries: Sequence[Point], k: int) -> list[list[Entry]]:
        """k-NN for many query points in one vectorized pass."""
        if k <= 0 or not queries:
            return [[] for _ in queries]
        U = np.asarray([[[q.x, q.y]] for q in queries], dtype=np.float64)
        out = kernels.gnn_batch(self, U, k, "max")
        if out is None:
            return [self.knn(q, k) for q in queries]
        cache = self._materialized()
        return [[cache[i] for i in row] for row in out[1].tolist()]

    def nearest(self, query: Point) -> Entry | None:
        result = self.knn(query, 1)
        return result[0] if result else None

    def range_many(self, windows: Sequence[Rect]) -> list[list[Entry]]:
        """Window queries for many windows in one frontier traversal."""
        W = np.asarray(
            [[w.x_lo, w.y_lo, w.x_hi, w.y_hi] for w in windows], dtype=np.float64
        ).reshape(len(windows), 4)
        qid, pid = kernels.range_batch(self, W)
        cache = self._materialized()
        # qid is sorted by window; slice each window's run out of pid.
        cuts = np.searchsorted(qid, np.arange(len(windows) + 1))
        pid = pid.tolist()
        get = cache.__getitem__
        return [
            list(map(get, pid[lo:hi])) for lo, hi in zip(cuts[:-1], cuts[1:])
        ]

    def range_query(self, window: Rect) -> list[Entry]:
        """All entries whose point lies inside ``window``."""
        idx = kernels.pruned_scan(
            self,
            lambda b: ~(
                (b[:, 2] < window.x_lo)
                | (b[:, 0] > window.x_hi)
                | (b[:, 3] < window.y_lo)
                | (b[:, 1] > window.y_hi)
            ),
            lambda p: (
                (p[:, 0] >= window.x_lo)
                & (p[:, 0] <= window.x_hi)
                & (p[:, 1] >= window.y_lo)
                & (p[:, 1] <= window.y_hi)
            ),
        )
        cache = self._materialized()
        return [cache[i] for i in idx.tolist()]

    def circle_range_query(self, center: Point, radius: float) -> list[Entry]:
        """All entries within ``radius`` of ``center``."""
        cx, cy = center.x, center.y
        idx = kernels.pruned_scan(
            self,
            lambda b: kernels.min_dists(b, cx, cy) <= radius,
            lambda p: kernels.point_dists(p, cx, cy) <= radius,
        )
        cache = self._materialized()
        return [cache[i] for i in idx.tolist()]

    # ------------------------------------------------------------------
    # Aggregate (group) nearest neighbor
    # ------------------------------------------------------------------

    def incremental_gnn(
        self, users: Sequence[Point], agg: str = "max"
    ) -> Iterator[tuple[float, Entry]]:
        """Yield ``(aggregate_distance, entry)`` in increasing order."""
        if not users:
            raise ValueError("user group must be non-empty")
        U = np.asarray([[u.x, u.y] for u in users], dtype=np.float64)
        if agg == "max":
            # max is monotone under squaring: search in squared space
            # (one sqrt per yielded result instead of m hypots per item).
            node_bound = lambda b: kernels.min_dists_sq_multi(b, U).max(axis=0)
            point_score = lambda p: kernels.point_dists_sq_multi(p, U).max(axis=1)
            finish = math.sqrt
        elif agg == "sum":
            node_bound = lambda b: kernels.min_dists_multi(b, U).sum(axis=0)
            point_score = lambda p: kernels.point_dists_multi(p, U).sum(axis=1)
            finish = lambda s: s
        else:
            raise ValueError(f"unknown aggregate: {agg!r}")
        cache = self._materialized()
        for score, i in kernels.best_first(self, node_bound, point_score):
            yield finish(score), cache[i]

    def gnn(
        self, users: Sequence[Point], k: int = 1, agg: str = "max"
    ) -> list[tuple[float, Entry]]:
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_gnn(users, agg), k))

    def gnn_many(
        self, groups: Sequence[Sequence[Point]], k: int = 1, agg: str = "max"
    ) -> list[list[tuple[float, Entry]]]:
        """k-GNN for many equal-size groups in one vectorized pass.

        Ragged group sizes (or a declined batch kernel) fall back to
        the per-group search; results are identical modulo ties.
        """
        if not groups:
            return []
        if agg not in ("max", "sum"):
            raise ValueError(f"unknown aggregate: {agg!r}")
        sizes = {len(g) for g in groups}
        out = None
        if len(sizes) == 1 and 0 not in sizes and k > 0:
            U = np.asarray(
                [[[u.x, u.y] for u in g] for g in groups], dtype=np.float64
            )
            out = kernels.gnn_batch(self, U, k, agg)
        if out is None:
            return [self.gnn(g, k, agg) for g in groups]
        scores, ids = out
        cache = self._materialized()
        return [
            [(s, cache[i]) for s, i in zip(srow, irow)]
            for srow, irow in zip(scores.tolist(), ids.tolist())
        ]

    # ------------------------------------------------------------------
    # Pruned candidate scans (Theorems 3 and 6 primitives)
    # ------------------------------------------------------------------

    def intersect_balls(
        self,
        centers: Sequence[Point],
        radii: Sequence[float],
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points within ``radii[i]`` of ``centers[i]`` for EVERY i.

        A node survives only if it intersects every ball — the MBR
        pruning rule of Theorem 3 (Fig. 10).
        """
        C = np.asarray([[c.x, c.y] for c in centers], dtype=np.float64)
        r = np.asarray(radii, dtype=np.float64)
        idx = kernels.pruned_scan(
            self,
            lambda b: np.all(kernels.min_dists_multi(b, C) <= r[:, None], axis=0),
            lambda p: np.all(kernels.point_dists_multi(p, C) <= r[None, :], axis=1),
            stats,
        )
        return self._points_excluding(idx, exclude)

    def within_dist_sum(
        self,
        centers: Sequence[Point],
        threshold: float,
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points whose summed distance to ``centers`` is <= threshold.

        The MBR analogue sums per-user min-distances (Theorem 6).
        """
        C = np.asarray([[c.x, c.y] for c in centers], dtype=np.float64)
        idx = kernels.pruned_scan(
            self,
            lambda b: kernels.min_dists_multi(b, C).sum(axis=0) <= threshold,
            lambda p: kernels.point_dists_multi(p, C).sum(axis=1) <= threshold,
            stats,
        )
        return self._points_excluding(idx, exclude)

    def scan(self, exclude: Optional[Point] = None, stats=None) -> list[Point]:
        """All points (minus ``exclude``) via a full counted traversal."""
        ones = lambda a: np.ones(len(a), dtype=bool)
        idx = kernels.pruned_scan(self, ones, ones, stats)
        return self._points_excluding(idx, exclude)

    def _points_excluding(self, idx: np.ndarray, exclude: Optional[Point]) -> list[Point]:
        if exclude is not None and idx.size:
            rows = self._pts[idx]
            keep = ~((rows[:, 0] == exclude.x) & (rows[:, 1] == exclude.y))
            idx = idx[keep]
        cache = self._materialized()
        return [cache[i].point for i in idx.tolist()]
