"""Pluggable spatial-index backends and the construction factory.

The paper's server "manages a data set P of points-of-interest and
indexes it by an R-tree" (Section 3.1), and every layer above — k-GNN
retrieval (gnn), Theorem-3/6 candidate pruning (core), the monitoring
loop and multi-group server (simulation), the figure harnesses
(experiments) — consumes that index only through the
:class:`SpatialIndex` protocol defined here.  Two implementations are
registered:

* ``"flat"`` — :class:`repro.index.flat.FlatRTree`, an STR-packed
  structure-of-arrays R-tree with vectorized NumPy kernels; the
  default wherever NumPy is available.
* ``"object"`` — :class:`repro.index.rtree.RTree`, the pointer-based
  reference implementation, also the only backend with in-place
  (non-rebuilding) Guttman insert/delete.

All call sites outside :mod:`repro.index` construct indexes through
:func:`build_index`; nothing else in the codebase names a concrete
tree class.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Protocol, Sequence, runtime_checkable

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import Entry, RTree

try:  # NumPy is an optional dependency; the object backend needs none.
    from repro.index.flat import FlatRTree
except ImportError:  # pragma: no cover - exercised only without numpy
    FlatRTree = None  # type: ignore[assignment]


@runtime_checkable
class SpatialIndex(Protocol):
    """What every spatial backend must answer.

    The first block is bookkeeping; the second block is the query
    surface the upper layers are written against.  ``agg`` takes the
    aggregate name (``"max"`` / ``"sum"``) as a plain string so the
    index layer stays independent of :mod:`repro.gnn`.
    """

    def __len__(self) -> int: ...

    def entries(self) -> Iterator[Entry]: ...

    def points(self) -> list[Point]: ...

    def insert(self, point: Point, payload: Any = None) -> None: ...

    def delete(self, point: Point, payload: Any = None) -> bool: ...

    def bulk_update(
        self,
        adds: Sequence[tuple[Point, Any]] = (),
        removes: Sequence[tuple[Point, Any]] = (),
    ) -> None: ...

    def height(self) -> int: ...

    def validate(self) -> None: ...

    def incremental_nearest(self, query: Point) -> Iterator[Entry]: ...

    def knn(self, query: Point, k: int) -> list[Entry]: ...

    def knn_many(self, queries: Sequence[Point], k: int) -> list[list[Entry]]: ...

    def nearest(self, query: Point) -> Optional[Entry]: ...

    def range_query(self, window: Rect) -> list[Entry]: ...

    def range_many(self, windows: Sequence[Rect]) -> list[list[Entry]]: ...

    def circle_range_query(self, center: Point, radius: float) -> list[Entry]: ...

    def incremental_gnn(
        self, users: Sequence[Point], agg: str = "max"
    ) -> Iterator[tuple[float, Entry]]: ...

    def gnn(
        self, users: Sequence[Point], k: int = 1, agg: str = "max"
    ) -> list[tuple[float, Entry]]: ...

    def gnn_many(
        self, groups: Sequence[Sequence[Point]], k: int = 1, agg: str = "max"
    ) -> list[list[tuple[float, Entry]]]: ...

    def intersect_balls(
        self,
        centers: Sequence[Point],
        radii: Sequence[float],
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]: ...

    def within_dist_sum(
        self,
        centers: Sequence[Point],
        threshold: float,
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]: ...

    def scan(self, exclude: Optional[Point] = None, stats=None) -> list[Point]: ...


_BACKENDS: dict[str, Any] = {"object": RTree}
if FlatRTree is not None:
    _BACKENDS["flat"] = FlatRTree

DEFAULT_BACKEND = "flat" if FlatRTree is not None else "object"


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


def build_index(
    points: Sequence[Point],
    payloads: Optional[Sequence[Any]] = None,
    backend: Optional[str] = None,
    max_entries: Optional[int] = None,
) -> SpatialIndex:
    """Bulk-load a spatial index over ``points``.

    ``backend`` is ``"flat"`` or ``"object"`` (None = the environment
    default, flat when NumPy is importable).  ``max_entries`` of None
    picks the backend's own packing default — the object tree mirrors
    the paper's page-sized nodes, the flat tree favors wide nodes so
    each vectorized kernel call amortizes over a larger sibling set.
    """
    name = backend if backend is not None else DEFAULT_BACKEND
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown spatial backend {name!r}; available: {available_backends()}"
        ) from None
    if max_entries is None:
        return cls.bulk_load(list(points), payloads=payloads)
    return cls.bulk_load(list(points), payloads=payloads, max_entries=max_entries)
