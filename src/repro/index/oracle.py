"""The pluggable distance oracle behind the road-network index.

:class:`NetworkIndex` used to keep every Dijkstra row it ever computed
in an unbounded dict — at 100k+ nodes each cached source costs ~800 KB
of float64, so the jump from 10k-edge grids to real city graphs was
blocked on memory, not CPU.  This module is the "smarter distance
oracle" the ROADMAP calls for, three cooperating mechanisms behind one
object:

* an **LRU row cache** with a configurable byte budget
  (``row_cache_bytes``): full distance rows are exact and reusable but
  evictable, with hit/miss/eviction/resident-byte counters.  The
  default budget (64 MiB) holds >1k rows at 10k-edge scale, so small
  grids behave exactly as the old unbounded dict;
* **ALT landmarks** (A*, Landmarks, Triangle inequality): ~16
  landmarks picked by the farthest-point heuristic, their rows
  precomputed once and pinned outside the LRU budget.  For any nodes
  ``s, t`` and landmark ``L``, ``|d(L,s) - d(L,t)| <= d(s,t) <=
  d(L,s) + d(L,t)`` — cheap lower/upper bounds that let the GNN kernel
  discard almost every POI before a single exact row is computed;
* **bounded-radius Dijkstra**: an early-exit single-source run that
  settles only the ball of radius ``cutoff`` around the source
  (SciPy's ``dijkstra(limit=...)`` when available, a heap traversal
  otherwise).  Entries beyond the cutoff are masked to ``inf`` —
  settled entries are bit-identical to the full row's, tentative ones
  never leak.

One oracle serves one road graph: :func:`oracle_for` hangs the oracle
off the :class:`~repro.network_ext.space.NetworkSpace`, so POI
replicas (:meth:`repro.space.network.NetworkPOISpace.replicate`) and
copy-on-write cluster epochs (:class:`repro.space.SharedSpace`) all
share a single row cache — POI churn never touches graph structure,
so nothing a replica does can invalidate another's distances.

Everything here is *exact*: bounds only ever rule candidates out, and
callers fall back to full rows whenever a bound cannot prove the
answer.  ``tests/test_citynet_equivalence.py`` holds the pruned and
bounded paths bit-identical to the full-row baseline.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

import numpy as np

try:  # SciPy is optional; the fallback kernels need only NumPy.
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - exercised only without scipy
    _csr_matrix = None
    _csgraph_dijkstra = None

DEFAULT_ROW_CACHE_BYTES = 64 * 1024 * 1024
DEFAULT_LANDMARKS = 16
DEFAULT_AUTO_THRESHOLD_NODES = 20_000

_MODES = ("auto", "on", "off")


def padded_cutoff(limit: float, offset: float = 0.0) -> float:
    """A Dijkstra cutoff that provably covers every distance whose
    *rounded* offset sum stays under ``limit``.

    Callers prune on float comparisons like ``fl(offset + d) <=
    limit``; solving for ``d`` with a rounded subtraction can land one
    ulp short, silently excluding a boundary node and breaking bit
    identity with the exact path.  The padding (a few ulp, relative to
    the magnitudes involved) errs on the side of settling a handful of
    extra nodes — harmless, since settled values are exact.
    """
    if not np.isfinite(limit):
        return float("inf")
    eps = np.finfo(np.float64).eps
    return (limit - offset) + 8.0 * eps * (abs(limit) + abs(offset) + 1.0)


@dataclass(frozen=True)
class OracleConfig:
    """Tuning knobs for one :class:`DistanceOracle`.

    ``alt_mode`` / ``bounded_mode`` gate the two pruning mechanisms:
    ``"on"`` / ``"off"`` force them, ``"auto"`` (the default) engages
    them only at or above ``auto_threshold_nodes`` graph nodes — below
    that, full rows are cheap and the serving stack behaves exactly as
    it did before the oracle existed.
    """

    row_cache_bytes: int = DEFAULT_ROW_CACHE_BYTES
    landmarks: int = DEFAULT_LANDMARKS
    alt_mode: str = "auto"
    bounded_mode: str = "auto"
    auto_threshold_nodes: int = DEFAULT_AUTO_THRESHOLD_NODES

    def __post_init__(self) -> None:
        if self.row_cache_bytes < 0:
            raise ValueError("row_cache_bytes must be >= 0")
        if self.landmarks < 1:
            raise ValueError("need at least one landmark")
        for mode in (self.alt_mode, self.bounded_mode):
            if mode not in _MODES:
                raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if self.auto_threshold_nodes < 0:
            raise ValueError("auto_threshold_nodes must be >= 0")


class DistanceOracle:
    """CSR road graph + bounded-memory exact distance machinery.

    ``space`` is anything exposing a networkx ``graph`` with positive
    ``length`` edge attributes (a
    :class:`~repro.network_ext.space.NetworkSpace`).  The graph is
    packed once and assumed immutable; all public methods return exact
    shortest-path values.

    ``scipy_hook`` is a zero-argument callable returning the
    ``(csr_matrix, dijkstra)`` pair to use — resolved at *compute*
    time, so tests that monkeypatch the SciPy symbols away (e.g. in
    :mod:`repro.index.network`) flip the oracle onto the pure-python
    kernels too.
    """

    def __init__(
        self,
        space,
        config: Optional[OracleConfig] = None,
        scipy_hook: Optional[Callable[[], tuple]] = None,
    ):
        self.config = config or OracleConfig()
        self._scipy_hook = scipy_hook or (
            lambda: (_csr_matrix, _csgraph_dijkstra)
        )
        graph = space.graph
        self.nodes: list[Hashable] = list(graph.nodes)
        self.node_id: dict[Hashable, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        n = len(self.nodes)
        # CSR adjacency: both directions of every undirected edge.
        src: list[int] = []
        dst: list[int] = []
        wgt: list[float] = []
        for u, v, data in graph.edges(data=True):
            iu, iv = self.node_id[u], self.node_id[v]
            length = float(data["length"])
            src += [iu, iv]
            dst += [iv, iu]
            wgt += [length, length]
        src_arr = np.asarray(src, dtype=np.int64)
        order = np.argsort(src_arr, kind="stable")
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src_arr, minlength=n), out=self.indptr[1:])
        self.indices = np.asarray(dst, dtype=np.int64)[order]
        self.weights = np.asarray(wgt, dtype=np.float64)[order]
        self._csgraph = None  # scipy matrix view, built on first use
        self.row_bytes = n * np.dtype(np.float64).itemsize
        self._max_rows = (
            self.config.row_cache_bytes // self.row_bytes if n else 0
        )
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._landmark_ids: Optional[np.ndarray] = None
        self._landmark_rows: Optional[np.ndarray] = None
        # Counters, all surfaced through :meth:`stats`.
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rows_computed = 0
        self.bounded_queries = 0
        self.alt_queries = 0
        self.alt_candidates = 0
        self.alt_survivors = 0

    # ------------------------------------------------------------------
    # Engagement policy
    # ------------------------------------------------------------------

    def _engaged(self, mode: str) -> bool:
        if mode == "on":
            return True
        if mode == "off":
            return False
        return len(self.nodes) >= self.config.auto_threshold_nodes

    @property
    def alt_active(self) -> bool:
        """Should GNN queries go through the landmark-pruned path?"""
        return self._engaged(self.config.alt_mode)

    @property
    def bounded_active(self) -> bool:
        """Should region construction use bounded-radius Dijkstra?"""
        return self._engaged(self.config.bounded_mode)

    # ------------------------------------------------------------------
    # The LRU row cache
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.indices) // 2

    def has_row(self, node_id: int) -> bool:
        """Is the full row resident (no counter or recency effects)?"""
        return node_id in self._rows

    def cached_row(self, node_id: int) -> Optional[np.ndarray]:
        """The resident full row, freshened, or ``None`` — never computes."""
        row = self._rows.get(node_id)
        if row is not None:
            self._rows.move_to_end(node_id)
        return row

    def row(self, node_id: int) -> np.ndarray:
        """The full exact distance row from ``node_id`` (cached)."""
        return self.rows([node_id])[node_id]

    def rows(self, node_ids: Sequence[int]) -> dict[int, np.ndarray]:
        """Full rows for every source, one multi-source dispatch for the
        misses.  The returned dict is eviction-proof: callers hold the
        arrays directly even if the budget cannot keep them resident.
        """
        out: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for node_id in node_ids:
            if node_id in out:
                continue
            row = self._rows.get(node_id)
            if row is not None:
                self.hits += 1
                self._rows.move_to_end(node_id)
                out[node_id] = row
            else:
                self.misses += 1
                missing.append(node_id)
        if missing:
            missing.sort()
            computed = self._compute_raw(missing)
            self.rows_computed += len(missing)
            for node_id, row in zip(missing, computed):
                out[node_id] = row
                self._insert(node_id, row)
        return out

    def _insert(self, node_id: int, row: np.ndarray) -> None:
        if self._max_rows <= 0:
            return
        self._rows[node_id] = row
        self._rows.move_to_end(node_id)
        while len(self._rows) > self._max_rows:
            self._rows.popitem(last=False)
            self.evictions += 1

    @property
    def resident_rows(self) -> int:
        return len(self._rows)

    @property
    def resident_bytes(self) -> int:
        return len(self._rows) * self.row_bytes

    # ------------------------------------------------------------------
    # Exact kernels (full + bounded)
    # ------------------------------------------------------------------

    def _compute_raw(self, node_ids: Sequence[int]) -> np.ndarray:
        """``[len(node_ids), n]`` exact rows, no cache interaction."""
        csr_matrix, csgraph_dijkstra = self._scipy_hook()
        if csgraph_dijkstra is not None:
            if self._csgraph is None:
                n = len(self.nodes)
                self._csgraph = csr_matrix(
                    (self.weights, self.indices, self.indptr), shape=(n, n)
                )
            return np.atleast_2d(
                csgraph_dijkstra(self._csgraph, indices=list(node_ids))
            )
        return np.vstack(
            [self._dijkstra_python(i, float("inf")) for i in node_ids]
        )

    def bounded_row(self, node_id: int, cutoff: float) -> np.ndarray:
        """Distances from ``node_id``, exact up to ``cutoff``.

        Every entry ``<= cutoff`` is bit-identical to the full row's;
        every entry beyond is ``inf`` (tentative values from the
        early-exited frontier never leak out).  Not cached — bounded
        rows are query-radius-specific.
        """
        self.bounded_queries += 1
        n = len(self.nodes)
        if cutoff < 0.0:
            return np.full(n, np.inf)
        cached = self.cached_row(node_id)
        if cached is not None:
            self.hits += 1
            row = cached.copy()
        else:
            csr_matrix, csgraph_dijkstra = self._scipy_hook()
            if csgraph_dijkstra is not None:
                if self._csgraph is None:
                    self._csgraph = csr_matrix(
                        (self.weights, self.indices, self.indptr),
                        shape=(n, n),
                    )
                # nextafter: scipy's ``limit`` contract on the exact
                # boundary is version-dependent; overshoot by one ulp
                # and let the mask below enforce ours.
                row = np.atleast_2d(
                    csgraph_dijkstra(
                        self._csgraph,
                        indices=[node_id],
                        limit=float(np.nextafter(cutoff, np.inf)),
                    )
                )[0]
            else:
                row = self._dijkstra_python(node_id, cutoff)
        row[row > cutoff] = np.inf
        return row

    def _dijkstra_python(self, source: int, cutoff: float) -> np.ndarray:
        """Heap Dijkstra over the CSR arrays (no-SciPy fallback).

        With a finite ``cutoff`` the run exits as soon as the frontier
        minimum passes it; settled values are exact, and the caller
        masks everything beyond the cutoff to ``inf``.
        """
        indptr = self.indptr.tolist()
        indices = self.indices.tolist()
        weights = self.weights.tolist()
        dist = [float("inf")] * len(self.nodes)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > cutoff:
                break  # heap pops are monotone: nothing closer remains
            if d > dist[u]:
                continue
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return np.asarray(dist, dtype=np.float64)

    # ------------------------------------------------------------------
    # ALT landmarks
    # ------------------------------------------------------------------

    def landmark_matrix(self) -> np.ndarray:
        """``[L, n]`` pinned landmark rows (built on first use).

        Landmarks are chosen by the farthest-point heuristic: start
        from the node farthest from node 0, then repeatedly add the
        node maximizing the distance to the nearest landmark so far —
        the standard spread that makes ``|d(L,s) - d(L,t)|`` tight.
        Deterministic for a given graph (argmax ties break to the
        lowest node id).
        """
        if self._landmark_rows is None:
            n = len(self.nodes)
            want = min(self.config.landmarks, n)
            seed_row = self._compute_raw([0])[0]
            first = int(np.argmax(seed_row))
            ids = [first]
            rows = [self._compute_raw([first])[0]]
            nearest = rows[0].copy()
            while len(ids) < want:
                candidate = int(np.argmax(nearest))
                if nearest[candidate] <= 0.0:
                    break  # every node already is a landmark
                row = self._compute_raw([candidate])[0]
                ids.append(candidate)
                rows.append(row)
                np.minimum(nearest, row, out=nearest)
            self.rows_computed += 1 + len(ids)
            self._landmark_ids = np.asarray(ids, dtype=np.int64)
            self._landmark_rows = np.vstack(rows)
        return self._landmark_rows

    def landmark_ids(self) -> np.ndarray:
        self.landmark_matrix()
        return self._landmark_ids

    @property
    def landmark_bytes(self) -> int:
        if self._landmark_rows is None:
            return 0
        return int(self._landmark_rows.nbytes)

    def note_alt(self, candidates: int, survivors: int) -> None:
        """Charge one landmark-pruned GNN query to the counters."""
        self.alt_queries += 1
        self.alt_candidates += int(candidates)
        self.alt_survivors += int(survivors)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe counter snapshot (served over the wire ``stats`` op)."""
        pruned = self.alt_candidates - self.alt_survivors
        return {
            "nodes": len(self.nodes),
            "edges": self.edge_count(),
            "row_bytes": int(self.row_bytes),
            "row_cache_bytes": int(self.config.row_cache_bytes),
            "resident_rows": self.resident_rows,
            "resident_bytes": int(self.resident_bytes),
            "row_cache_hits": self.hits,
            "row_cache_misses": self.misses,
            "row_cache_evictions": self.evictions,
            "rows_computed": self.rows_computed,
            "bounded_queries": self.bounded_queries,
            "landmarks": (
                0 if self._landmark_ids is None else len(self._landmark_ids)
            ),
            "landmark_bytes": self.landmark_bytes,
            "alt_queries": self.alt_queries,
            "alt_candidates": self.alt_candidates,
            "alt_survivors": self.alt_survivors,
            "alt_prune_rate": (
                pruned / self.alt_candidates if self.alt_candidates else 0.0
            ),
        }


def oracle_for(
    space,
    config: Optional[OracleConfig] = None,
    scipy_hook: Optional[Callable[[], tuple]] = None,
) -> DistanceOracle:
    """The one shared oracle of a road-network space.

    The first call builds a :class:`DistanceOracle` and hangs it off
    ``space``; later calls return the same object, so POI replicas and
    cluster epoch shares over one graph hold one row cache.  An
    explicit ``config`` that disagrees with the installed oracle's is
    an error — silent reconfiguration would invalidate the sharing
    contract.
    """
    existing = getattr(space, "_distance_oracle", None)
    if existing is not None:
        if config is not None and config != existing.config:
            raise ValueError(
                "space already carries a distance oracle with a different "
                f"config: {existing.config} != {config}"
            )
        return existing
    oracle = DistanceOracle(space, config, scipy_hook)
    space._distance_oracle = oracle
    return oracle
