"""Vectorized traversal kernels over the flat (SoA) R-tree layout.

One best-first kernel and one pruned-scan kernel serve every spatial
primitive in the system: k-NN and incremental NN (index layer), k-GNN
with batched per-user ``min_dist`` lower bounds (gnn layer), window and
circle range queries, and the Theorem-3/6 candidate pruning scans (core
layer).  Callers parameterize the kernels with small closures that map
packed node bounds / point arrays to scores or masks; the traversal
logic itself — heap discipline, level-wise frontier expansion, node
access accounting — is written exactly once.

The node layout these kernels consume is documented in
:mod:`repro.index.flat`: per level, ``bounds`` is ``(k, 4)`` float64
``[x_lo, y_lo, x_hi, y_hi]`` and each node's children occupy the
contiguous range ``start[i] : start[i] + count[i]`` of the level below
(leaf nodes range over the packed point array instead).

Every kernel answers over the tree's **live view** — packed points
minus tombstones, plus the buffered-insert arena — taken from
``tree.delta_view()``.  Tombstoned points are filtered at the moment
leaf ids materialize (node MBRs over a superset stay valid lower
bounds, so the traversal itself needs no change); arena points are
scored brute-force alongside, with the exact same float operations as
their packed counterparts so delta-state answers are bit-identical to
a fresh-rebuilt index.  When the view reports no deltas the kernels
run their original slice-based fast paths untouched.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional

import numpy as np

# A node-scoring function: (k, 4) bounds -> (k,) lower bounds.
BoundFn = Callable[[np.ndarray], np.ndarray]
# A point-scoring function: (k, 2) points -> (k,) exact scores.
ScoreFn = Callable[[np.ndarray], np.ndarray]
# Mask variants used by the pruned scan.
MaskFn = Callable[[np.ndarray], np.ndarray]


def min_dists(bounds: np.ndarray, x: float, y: float) -> np.ndarray:
    """``||q, N||_min`` for every node MBR in ``bounds`` at once."""
    dx = np.maximum(bounds[:, 0] - x, 0.0) + np.maximum(x - bounds[:, 2], 0.0)
    dy = np.maximum(bounds[:, 1] - y, 0.0) + np.maximum(y - bounds[:, 3], 0.0)
    return np.hypot(dx, dy)


def min_dists_sq(bounds: np.ndarray, x: float, y: float) -> np.ndarray:
    """Squared ``||q, N||_min`` — same ordering, no square roots."""
    dx = np.maximum(bounds[:, 0] - x, 0.0) + np.maximum(x - bounds[:, 2], 0.0)
    dy = np.maximum(bounds[:, 1] - y, 0.0) + np.maximum(y - bounds[:, 3], 0.0)
    return dx * dx + dy * dy


def min_dists_sq_multi(bounds: np.ndarray, users: np.ndarray) -> np.ndarray:
    """Squared per-user node ``min_dist`` matrix, shape ``(m, k)``."""
    ux = users[:, 0][:, None]
    uy = users[:, 1][:, None]
    dx = np.maximum(bounds[None, :, 0] - ux, 0.0) + np.maximum(
        ux - bounds[None, :, 2], 0.0
    )
    dy = np.maximum(bounds[None, :, 1] - uy, 0.0) + np.maximum(
        uy - bounds[None, :, 3], 0.0
    )
    return dx * dx + dy * dy


def point_dists_sq(pts: np.ndarray, x: float, y: float) -> np.ndarray:
    """Squared distances from ``(x, y)`` to every packed point."""
    dx = pts[:, 0] - x
    dy = pts[:, 1] - y
    return dx * dx + dy * dy


def point_dists_sq_multi(pts: np.ndarray, users: np.ndarray) -> np.ndarray:
    """Squared point-to-user distance matrix, shape ``(k, m)``."""
    dx = pts[:, 0][:, None] - users[None, :, 0]
    dy = pts[:, 1][:, None] - users[None, :, 1]
    return dx * dx + dy * dy


def min_dists_multi(bounds: np.ndarray, users: np.ndarray) -> np.ndarray:
    """Per-user node ``min_dist`` matrix, shape ``(m, k)``.

    This is the batched lower-bound computation of the MBM aggregate-NN
    method (Papadias et al., ref. [24]): one call covers the whole
    group against a whole sibling set.
    """
    ux = users[:, 0][:, None]
    uy = users[:, 1][:, None]
    dx = np.maximum(bounds[None, :, 0] - ux, 0.0) + np.maximum(
        ux - bounds[None, :, 2], 0.0
    )
    dy = np.maximum(bounds[None, :, 1] - uy, 0.0) + np.maximum(
        uy - bounds[None, :, 3], 0.0
    )
    return np.hypot(dx, dy)


def point_dists(pts: np.ndarray, x: float, y: float) -> np.ndarray:
    """Distances from ``(x, y)`` to every packed point."""
    return np.hypot(pts[:, 0] - x, pts[:, 1] - y)


def point_dists_multi(pts: np.ndarray, users: np.ndarray) -> np.ndarray:
    """Point-to-user distance matrix, shape ``(k, m)``."""
    return np.hypot(
        pts[:, 0][:, None] - users[None, :, 0],
        pts[:, 1][:, None] - users[None, :, 1],
    )


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offset of each output slot within its own range, then shift.
    bases = np.repeat(counts.cumsum() - counts, counts)
    return np.arange(total, dtype=np.int64) - bases + np.repeat(starts, counts)


_POINTS = -1  # cursor over scored points: pops yield results


def best_first(tree, node_bound: BoundFn, point_score: ScoreFn) -> Iterator[tuple[float, int]]:
    """Yield ``(score, point_index)`` in increasing score order.

    Generic best-first search: node lower bounds and point scores are
    computed vectorized per sibling set, then fed through one priority
    queue.  Serves plain NN (score = distance to one query point) and
    aggregate GNN (score = MAX/SUM over the group) alike.  Callers may
    score with any monotone transform of the target metric (e.g.
    squared distances) as long as ``node_bound`` stays a lower bound of
    ``point_score`` over the node's subtree.

    Every expanded node enters the queue as a single *cursor* — its
    children (or points) pre-scored vectorized and pre-sorted — keyed
    by the score of the next unconsumed item.  A sibling set of w
    items therefore costs one scoring call and one push, plus one
    push/pop per item the search actually reaches, not w pushes up
    front.

    Deltas: the arena enters the queue as one more pre-scored cursor
    (so buffered points interleave with packed ones in exact score
    order), and tombstoned ids are dropped when a leaf's points are
    scored — dead points are never scored, so a full enumeration ends
    after exactly the live points.
    """
    levels = tree._levels
    alive, buf_pts, buf_ids = tree.delta_view()
    counter = itertools.count()  # tie-breaker: heap never compares cursors
    # Heap items: (score, seq, cursor_level, scores, ids, pos) where
    # ids[pos:] are unconsumed nodes of that level (_POINTS: points).
    heap: list = []
    if levels:
        top = len(levels) - 1
        root_bound = float(node_bound(levels[top].bounds[0:1])[0])
        heap.append((root_bound, next(counter), top, [root_bound], [0], 0))
    if buf_pts is not None:
        sc = point_score(buf_pts)
        order = np.argsort(sc, kind="stable")
        heap.append(
            (
                float(sc[order[0]]),
                next(counter),
                _POINTS,
                sc[order].tolist(),
                buf_ids[order].tolist(),
                0,
            )
        )
    heapq.heapify(heap)
    while heap:
        score, _, clevel, scores, ids, pos = heapq.heappop(heap)
        if pos + 1 < len(ids):  # re-arm the cursor for its next item
            heapq.heappush(
                heap, (scores[pos + 1], next(counter), clevel, scores, ids, pos + 1)
            )
        if clevel == _POINTS:
            yield score, ids[pos]
            continue
        lvl = levels[clevel]
        idx = ids[pos]
        start = int(lvl.start[idx])
        stop = start + int(lvl.count[idx])
        if clevel == 0:
            if alive is not None:
                pts_ids = np.arange(start, stop, dtype=np.int64)
                pts_ids = pts_ids[alive[start:stop]]
                if pts_ids.size == 0:
                    continue  # fully tombstoned leaf: nothing to push
                sc = point_score(tree._pts[pts_ids])
            else:
                pts_ids = None
                sc = point_score(tree._pts[start:stop])
            child_level = _POINTS
        else:
            pts_ids = None
            sc = node_bound(levels[clevel - 1].bounds[start:stop])
            child_level = clevel - 1
        order = np.argsort(sc, kind="stable")
        child_ids = (
            (start + order).tolist() if pts_ids is None else pts_ids[order].tolist()
        )
        heapq.heappush(
            heap,
            (
                float(sc[order[0]]),
                next(counter),
                child_level,
                sc[order].tolist(),
                child_ids,
                0,
            ),
        )


def _scorers(tree, U: np.ndarray, agg: str):
    """Build the five scoring closures ``gnn_batch`` traverses with.

    ``block_*`` score a per-group gathered block of node ids / point
    ids shaped ``(g, cap)``; ``pair_*`` score flat (group, node/point)
    pair arrays, where ``gidx`` maps each row to its group;
    ``buffer_points`` scores the arena's ``(nb, 2)`` point array
    against every group at once, shape ``(g, nb)``.  The packed
    closures gather from the level/point *column* arrays (contiguous
    1-D), which beats row gathers of the packed 2-D layouts.
    Single-user MAX groups (plain k-NN) skip the per-user axis and its
    reductions entirely and score in squared space; returns
    ``(block_bounds, block_points, pair_bounds, pair_points,
    buffer_points, out_sqrt)`` with ``out_sqrt`` telling the caller
    whether final scores still need the square root.

    Rounding parity: SUM scores use ``np.hypot`` exactly like the
    scalar traversal's ``min_dists_multi`` / ``point_dists_multi``, so
    a batched query returns bit-identical distances to its scalar
    equivalent (the batched-service equivalence suite relies on this);
    MAX scores stay in squared space on both paths and take one
    correctly-rounded square root at the end, which is likewise
    bit-identical.  ``buffer_points`` repeats the packed point float
    ops verbatim, so arena and packed copies of the same point always
    score identically.
    """
    g, m, _ = U.shape
    squared = agg == "max"  # max is monotone under squaring; sum is not
    xs, ys = tree.point_columns()
    if m == 1 and squared:
        qx = np.ascontiguousarray(U[:, 0, 0])
        qy = np.ascontiguousarray(U[:, 0, 1])

        def block_bounds(lvl, cidx: np.ndarray) -> np.ndarray:
            lo_x, lo_y, hi_x, hi_y = lvl.columns()
            bx = qx[:, None]
            by = qy[:, None]
            dx = np.maximum(np.maximum(lo_x[cidx] - bx, bx - hi_x[cidx]), 0.0)
            dy = np.maximum(np.maximum(lo_y[cidx] - by, by - hi_y[cidx]), 0.0)
            return dx * dx + dy * dy

        def block_points(pidx: np.ndarray) -> np.ndarray:
            dx = xs[pidx] - qx[:, None]
            dy = ys[pidx] - qy[:, None]
            return dx * dx + dy * dy

        def pair_bounds(lvl, nid: np.ndarray, gidx: np.ndarray) -> np.ndarray:
            lo_x, lo_y, hi_x, hi_y = lvl.columns()
            gx = qx[gidx]
            gy = qy[gidx]
            dx = np.maximum(np.maximum(lo_x[nid] - gx, gx - hi_x[nid]), 0.0)
            dy = np.maximum(np.maximum(lo_y[nid] - gy, gy - hi_y[nid]), 0.0)
            return dx * dx + dy * dy

        def pair_points(nid: np.ndarray, gidx: np.ndarray) -> np.ndarray:
            dx = xs[nid] - qx[gidx]
            dy = ys[nid] - qy[gidx]
            return dx * dx + dy * dy

        def buffer_points(bpts: np.ndarray) -> np.ndarray:
            dx = bpts[:, 0][None, :] - qx[:, None]
            dy = bpts[:, 1][None, :] - qy[:, None]
            return dx * dx + dy * dy

        return block_bounds, block_points, pair_bounds, pair_points, buffer_points, True

    qxm = np.ascontiguousarray(U[:, :, 0])  # (g, m)
    qym = np.ascontiguousarray(U[:, :, 1])
    ux3 = qxm[:, :, None]  # (g, m, 1)
    uy3 = qym[:, :, None]

    def block_bounds(lvl, cidx: np.ndarray) -> np.ndarray:
        lo_x, lo_y, hi_x, hi_y = lvl.columns()
        blx = lo_x[cidx][:, None, :]  # (g, 1, cap)
        bhx = hi_x[cidx][:, None, :]
        bly = lo_y[cidx][:, None, :]
        bhy = hi_y[cidx][:, None, :]
        dx = np.maximum(np.maximum(blx - ux3, ux3 - bhx), 0.0)
        dy = np.maximum(np.maximum(bly - uy3, uy3 - bhy), 0.0)
        if squared:
            D = dx * dx + dy * dy  # (g, m, cap)
            return D.max(axis=1)
        return np.hypot(dx, dy).sum(axis=1)

    def block_points(pidx: np.ndarray) -> np.ndarray:
        dx = xs[pidx][:, None, :] - ux3  # (g, m, cap)
        dy = ys[pidx][:, None, :] - uy3
        if squared:
            d = dx * dx + dy * dy
            return d.max(axis=1)
        return np.hypot(dx, dy).sum(axis=1)

    def pair_bounds(lvl, nid: np.ndarray, gidx: np.ndarray) -> np.ndarray:
        lo_x, lo_y, hi_x, hi_y = lvl.columns()
        gx = qxm[gidx]  # (p, m)
        gy = qym[gidx]
        blx = lo_x[nid][:, None]
        bhx = hi_x[nid][:, None]
        bly = lo_y[nid][:, None]
        bhy = hi_y[nid][:, None]
        dx = np.maximum(np.maximum(blx - gx, gx - bhx), 0.0)
        dy = np.maximum(np.maximum(bly - gy, gy - bhy), 0.0)
        if squared:
            D = dx * dx + dy * dy
            return D.max(axis=1)
        return np.hypot(dx, dy).sum(axis=1)

    def pair_points(nid: np.ndarray, gidx: np.ndarray) -> np.ndarray:
        dx = xs[nid][:, None] - qxm[gidx]  # (p, m)
        dy = ys[nid][:, None] - qym[gidx]
        if squared:
            d = dx * dx + dy * dy
            return d.max(axis=1)
        return np.hypot(dx, dy).sum(axis=1)

    def buffer_points(bpts: np.ndarray) -> np.ndarray:
        dx = bpts[:, 0][None, None, :] - ux3  # (g, m, nb)
        dy = bpts[:, 1][None, None, :] - uy3
        if squared:
            d = dx * dx + dy * dy
            return d.max(axis=1)
        return np.hypot(dx, dy).sum(axis=1)

    return block_bounds, block_points, pair_bounds, pair_points, buffer_points, squared


def gnn_batch(
    tree, U: np.ndarray, k: int, agg: str
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Exact k-GNN for many groups in one vectorized pass.

    ``U`` is ``(g, m, 2)`` — ``g`` groups of ``m`` users each (plain
    k-NN is the ``m = 1`` case).  Strategy: (1) greedy batched descent
    from the root, each group following its minimum-lower-bound child,
    lands every group on its most promising *seed leaf*; (2) the k-th
    best aggregate distance over the seed leaf's live points plus the
    whole arena upper-bounds the true k-th best; (3) a frontier of
    (group, node) pairs descends from the root again, dropping every
    pair whose lower bound exceeds the group's bound, and the
    surviving leaves' live points — joined by the arena points under
    the bound — are scored and segment-selected to the top k per
    group.  All three phases cost a constant number of NumPy calls per
    tree level, independent of g.  Returns ``(scores, ids)`` of shape
    ``(g, k)``, or None when a precondition fails (no packed tree, or
    some group's candidate pool is thinner than k); the caller falls
    back to the incremental search, which handles every delta state.
    """
    levels = tree._levels
    if not levels or k <= 0 or k > len(tree):
        return None
    alive, buf_pts, buf_ids = tree.delta_view()
    leaf = levels[0]
    g = U.shape[0]
    (
        block_bounds,
        block_points,
        pair_bounds,
        pair_points,
        buffer_points,
        out_sqrt,
    ) = _scorers(tree, U, agg)

    # (1) greedy descent: per group, repeatedly step into the child
    # with the smallest aggregate lower bound.  Each level scores one
    # (g, fanout) block; the landing leaf is a good (not necessarily
    # optimal) source for the pruning bound.
    seed = np.zeros(g, dtype=np.int64)
    for level in range(len(levels) - 1, 0, -1):
        lvl = levels[level]
        start = lvl.start[seed]
        count = lvl.count[seed]
        cap = int(count.max())
        col = np.arange(cap)
        cidx = start[:, None] + col[None, :]
        valid = col[None, :] < count[:, None]
        sc = block_bounds(levels[level - 1], np.where(valid, cidx, 0))  # (g, cap)
        sc = np.where(valid, sc, np.inf)
        seed = cidx[np.arange(g), sc.argmin(axis=1)]

    # (2) k-th best aggregate distance over each group's candidate
    # pool: the seed leaf's live points plus the whole arena (arena
    # points are never pruned, so they always belong in the pool).
    seed_count = leaf.count[seed]
    cap = int(seed_count.max())
    col = np.arange(cap)
    pidx = leaf.start[seed][:, None] + col[None, :]
    valid = col[None, :] < seed_count[:, None]
    safe = np.where(valid, pidx, 0)
    pa = np.where(valid, block_points(safe), np.inf)
    if alive is not None:
        pa = np.where(valid & alive[safe], pa, np.inf)
    bsc = None
    if buf_pts is not None:
        bsc = buffer_points(buf_pts)  # (g, nb)
        pool = np.concatenate([pa, bsc], axis=1)
    else:
        pool = pa
    if pool.shape[1] < k or (np.isfinite(pool).sum(axis=1) < k).any():
        return None
    bound = np.partition(pool, k - 1, axis=1)[:, k - 1]  # (g,)

    # (3) bounded frontier descent: (group, node) pairs, pruned per
    # level.  The seed path always survives (ancestor bounds only
    # shrink down the path), so every group keeps >= k candidates:
    # each pool point under the bound is either an arena point (never
    # pruned) or a live packed point whose ancestors' bounds are <=
    # its own score <= the bound.
    gid = np.arange(g, dtype=np.int64)
    nid = np.zeros(g, dtype=np.int64)
    for level in range(len(levels) - 1, -1, -1):
        lvl = levels[level]
        sc = pair_bounds(lvl, nid, gid)
        keep = sc <= bound[gid]
        gid = gid[keep]
        nid = nid[keep]
        counts = lvl.count[nid]
        gid = np.repeat(gid, counts)
        nid = expand_ranges(lvl.start[nid], counts)

    if alive is not None and nid.size:
        keep = alive[nid]
        gid = gid[keep]
        nid = nid[keep]
    sc = pair_points(nid, gid)
    sel = sc <= bound[gid]  # drop losers before the sort
    gid = gid[sel]
    nid = nid[sel]
    sc = sc[sel]
    if bsc is not None:
        inb = bsc <= bound[:, None]  # (g, nb)
        gb, jb = np.nonzero(inb)
        gid = np.concatenate([gid, gb.astype(np.int64)])
        nid = np.concatenate([nid, buf_ids[jb]])
        sc = np.concatenate([sc, bsc[inb]])

    # Segment-select the k best per group.
    order = np.lexsort((nid, sc, gid))
    sq_ = gid[order]
    seg_new = np.empty(len(sq_), dtype=bool)
    seg_new[0] = True
    seg_new[1:] = sq_[1:] != sq_[:-1]
    seg_start = np.flatnonzero(seg_new)
    seg_len = np.diff(np.append(seg_start, len(sq_)))
    pos = np.arange(len(sq_)) - np.repeat(seg_start, seg_len)
    sel = pos < k
    scores = sc[order][sel].reshape(g, k)
    ids = nid[order][sel].reshape(g, k)
    if out_sqrt:
        scores = np.sqrt(scores)
    return scores, ids


def range_batch(tree, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Window queries for many windows in one frontier traversal.

    ``W`` is ``(w, 4)`` float64 ``[x_lo, y_lo, x_hi, y_hi]``.  The
    frontier is a flat array of (window, node) pairs; each level prunes
    and expands ALL pairs in a constant number of NumPy calls, so the
    per-level cost is independent of how many windows are in flight.
    Arena points are window-tested as one broadcast containment mask.
    Returns ``(window_ids, point_ids)`` of the surviving live points,
    sorted by window then point id (packed ids precede arena ids).
    """
    if len(W) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    alive, buf_pts, buf_ids = tree.delta_view()
    levels = tree._levels
    wlx = np.ascontiguousarray(W[:, 0])
    wly = np.ascontiguousarray(W[:, 1])
    whx = np.ascontiguousarray(W[:, 2])
    why = np.ascontiguousarray(W[:, 3])
    qid_p = np.empty(0, dtype=np.int64)
    pid_p = np.empty(0, dtype=np.int64)
    if levels:
        qid = np.arange(len(W), dtype=np.int64)
        nid = np.zeros(len(W), dtype=np.int64)
        for level in range(len(levels) - 1, -1, -1):
            lvl = levels[level]
            lo_x, lo_y, hi_x, hi_y = lvl.columns()
            keep = (
                (hi_x[nid] >= wlx[qid])
                & (lo_x[nid] <= whx[qid])
                & (hi_y[nid] >= wly[qid])
                & (lo_y[nid] <= why[qid])
            )
            qid = qid[keep]
            nid = nid[keep]
            if nid.size == 0:
                break
            counts = lvl.count[nid]
            qid = np.repeat(qid, counts)
            nid = expand_ranges(lvl.start[nid], counts)
        else:
            if alive is not None:
                keep = alive[nid]
                qid = qid[keep]
                nid = nid[keep]
            xs, ys = tree.point_columns()
            px = xs[nid]
            py = ys[nid]
            mask = (
                (px >= wlx[qid])
                & (px <= whx[qid])
                & (py >= wly[qid])
                & (py <= why[qid])
            )
            qid_p = qid[mask]
            pid_p = nid[mask]
    if buf_pts is None:
        return qid_p, pid_p
    bx = buf_pts[:, 0]
    by = buf_pts[:, 1]
    inside = (
        (bx[None, :] >= wlx[:, None])
        & (bx[None, :] <= whx[:, None])
        & (by[None, :] >= wly[:, None])
        & (by[None, :] <= why[:, None])
    )
    qb, jb = np.nonzero(inside)
    qid_all = np.concatenate([qid_p, qb.astype(np.int64)])
    pid_all = np.concatenate([pid_p, buf_ids[jb]])
    order = np.lexsort((pid_all, qid_all))
    return qid_all[order], pid_all[order]


def pruned_scan(
    tree,
    node_mask: MaskFn,
    point_mask: MaskFn,
    stats: Optional[Any] = None,
) -> np.ndarray:
    """Indices of live points surviving a node-pruned scan.

    Level-wise frontier traversal: at each level the surviving nodes'
    children are gathered in one shot and masked in one vectorized
    call.  Node accesses are counted exactly as the object backend
    does — every node whose MBR is examined is one access (arena
    points are not nodes and count nothing).  Tombstoned ids are
    dropped before the final point mask; arena survivors are appended
    after the packed ones.
    """
    alive, buf_pts, buf_ids = tree.delta_view()
    levels = tree._levels
    packed = np.empty(0, dtype=np.int64)
    if levels:
        idx = np.zeros(1, dtype=np.int64)
        for level in range(len(levels) - 1, -1, -1):
            lvl = levels[level]
            if stats is not None:
                stats.index_node_accesses += int(idx.size)
            keep = node_mask(lvl.bounds[idx])
            idx = idx[keep]
            if idx.size == 0:
                break
            idx = expand_ranges(lvl.start[idx], lvl.count[idx])
        else:
            if alive is not None:
                idx = idx[alive[idx]]
            if idx.size:
                packed = idx[point_mask(tree._pts[idx])]
    if buf_pts is None:
        return packed
    bsel = buf_ids[point_mask(buf_pts)]
    if packed.size == 0:
        return bsel
    return np.concatenate([packed, bsel])
