"""An in-memory R-tree over planar points (the object backend).

Two construction paths are provided:

* :meth:`RTree.bulk_load` — Sort-Tile-Recursive (STR) packing, the
  standard way to index a static POI set;
* :meth:`RTree.insert` — classic Guttman insertion with quadratic
  split, for dynamic maintenance.

Leaf entries hold ``(point, payload)`` pairs; interior entries hold
child nodes.  This is the *reference* spatial backend: every query
primitive of the :class:`repro.index.backend.SpatialIndex` protocol is
implemented here through two shared traversals — one best-first search
(:func:`best_first_search`) and one node-pruned scan
(:func:`pruned_entry_scan`) — that the k-NN, aggregate-GNN, range and
Theorem-3/6 candidate queries all parameterize.  The vectorized
production backend lives in :mod:`repro.index.flat`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect

DEFAULT_MAX_ENTRIES = 16


@dataclass(slots=True)
class Entry:
    """A leaf entry: a data point and an opaque payload (e.g. POI id)."""

    point: Point
    payload: Any = None

    @property
    def rect(self) -> Rect:
        return Rect.from_point(self.point)


class RTreeNode:
    """A node of the R-tree; ``is_leaf`` decides the child type."""

    __slots__ = ("is_leaf", "children", "rect")

    def __init__(self, is_leaf: bool, children: Optional[list] = None):
        self.is_leaf = is_leaf
        self.children: list = children if children is not None else []
        self.rect: Rect = self._compute_rect()

    def _compute_rect(self) -> Rect:
        if not self.children:
            return Rect(0.0, 0.0, 0.0, 0.0)
        rects = [c.rect for c in self.children]
        out = rects[0]
        for r in rects[1:]:
            out = out.union(r)
        return out

    def refresh_rect(self) -> None:
        self.rect = self._compute_rect()

    def __len__(self) -> int:
        return len(self.children)


class RTree:
    """R-tree over points with STR bulk loading and quadratic insert."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self.root = RTreeNode(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        points: Sequence[Point],
        payloads: Optional[Sequence[Any]] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive.

        Points are sorted by x, cut into vertical slabs of
        ``ceil(sqrt(n / max_entries))`` runs, each slab sorted by y and
        chopped into leaves; the process repeats one level up until a
        single root remains.
        """
        tree = cls(max_entries=max_entries)
        if payloads is None:
            entries = [Entry(p, i) for i, p in enumerate(points)]
        else:
            if len(payloads) != len(points):
                raise ValueError("payloads length must match points length")
            entries = [Entry(p, payloads[i]) for i, p in enumerate(points)]
        tree._size = len(entries)
        if not entries:
            return tree

        def pack(items: list, is_leaf: bool) -> list[RTreeNode]:
            n = len(items)
            node_count = math.ceil(n / max_entries)
            slab_count = max(1, math.ceil(math.sqrt(node_count)))
            per_slab = math.ceil(n / slab_count)
            items_sorted = sorted(items, key=lambda e: e.rect.center.x)
            nodes: list[RTreeNode] = []
            for s in range(0, n, per_slab):
                slab = sorted(
                    items_sorted[s : s + per_slab], key=lambda e: e.rect.center.y
                )
                for k in range(0, len(slab), max_entries):
                    nodes.append(RTreeNode(is_leaf, slab[k : k + max_entries]))
            return nodes

        level = pack(entries, is_leaf=True)
        while len(level) > 1:
            level = pack(level, is_leaf=False)
        tree.root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Dynamic insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------

    def insert(self, point: Point, payload: Any = None) -> None:
        entry = Entry(point, payload)
        self._size += 1
        split = self._insert_into(self.root, entry)
        if split is not None:
            old_root = self.root
            self.root = RTreeNode(is_leaf=False, children=[old_root, split])

    def _insert_into(self, node: RTreeNode, entry: Entry) -> Optional[RTreeNode]:
        """Insert recursively; returns the sibling if ``node`` split."""
        if node.is_leaf:
            node.children.append(entry)
        else:
            child = self._choose_subtree(node, entry.rect)
            split = self._insert_into(child, entry)
            if split is not None:
                node.children.append(split)
        if len(node.children) > self.max_entries:
            sibling = self._quadratic_split(node)
            node.refresh_rect()
            return sibling
        node.rect = node.rect.union(entry.rect)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, rect: Rect) -> RTreeNode:
        """Least-enlargement child; ties broken by smaller area."""
        return min(
            node.children, key=lambda c: (c.rect.enlargement(rect), c.rect.area)
        )

    def _quadratic_split(self, node: RTreeNode) -> RTreeNode:
        """Guttman's quadratic split; mutates ``node``, returns sibling."""
        children = node.children
        # Pick the pair wasting the most area as seeds.
        worst = (-1.0, 0, 1)
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                waste = (
                    children[i].rect.union(children[j].rect).area
                    - children[i].rect.area
                    - children[j].rect.area
                )
                if waste > worst[0]:
                    worst = (waste, i, j)
        _, si, sj = worst
        group_a = [children[si]]
        group_b = [children[sj]]
        rect_a = children[si].rect
        rect_b = children[sj].rect
        remaining = [c for k, c in enumerate(children) if k not in (si, sj)]
        while remaining:
            # Force-assign if one group must take all remaining members.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for c in remaining:
                    rect_a = rect_a.union(c.rect)
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for c in remaining:
                    rect_b = rect_b.union(c.rect)
                break
            # Pick the member with the largest preference difference.
            best_idx = max(
                range(len(remaining)),
                key=lambda k: abs(
                    rect_a.enlargement(remaining[k].rect)
                    - rect_b.enlargement(remaining[k].rect)
                ),
            )
            c = remaining.pop(best_idx)
            da = rect_a.enlargement(c.rect)
            db = rect_b.enlargement(c.rect)
            if (da, rect_a.area, len(group_a)) <= (db, rect_b.area, len(group_b)):
                group_a.append(c)
                rect_a = rect_a.union(c.rect)
            else:
                group_b.append(c)
                rect_b = rect_b.union(c.rect)
        node.children = group_a
        node.refresh_rect()
        sibling = RTreeNode(is_leaf=node.is_leaf, children=group_b)
        return sibling

    # ------------------------------------------------------------------
    # Deletion (Guttman condense-tree with reinsertion)
    # ------------------------------------------------------------------

    def delete(self, point: Point, payload: Any = None) -> bool:
        """Remove one leaf entry matching ``point`` (and ``payload`` if
        given).  Returns False when no such entry exists.

        Underfull nodes on the path are dissolved and their remaining
        entries reinserted, preserving the tree invariants.
        """
        orphans: list = []
        removed = self._delete_from(self.root, point, payload, orphans)
        if not removed:
            return False
        self._size -= 1
        # Shrink a root with a single non-leaf child.
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        if not self.root.children and not self.root.is_leaf:
            self.root = RTreeNode(is_leaf=True)
        for node in orphans:
            for item in self._collect_entries(node):
                self._size -= 1  # insert() will re-increment
                self.insert(item.point, item.payload)
        return True

    def _delete_from(
        self, node: RTreeNode, point: Point, payload: Any, orphans: list
    ) -> bool:
        if node.is_leaf:
            for k, entry in enumerate(node.children):
                if entry.point == point and (payload is None or entry.payload == payload):
                    node.children.pop(k)
                    node.refresh_rect()
                    return True
            return False
        for k, child in enumerate(node.children):
            if not child.rect.contains_point(point):
                continue
            if self._delete_from(child, point, payload, orphans):
                if len(child.children) < self.min_entries:
                    node.children.pop(k)
                    orphans.append(child)
                node.refresh_rect()
                return True
        return False

    @staticmethod
    def _collect_entries(node: RTreeNode) -> list[Entry]:
        if node.is_leaf:
            return list(node.children)
        out: list[Entry] = []
        stack = list(node.children)
        while stack:
            item = stack.pop()
            if isinstance(item, Entry):
                out.append(item)
            elif item.is_leaf:
                out.extend(item.children)
            else:
                stack.extend(item.children)
        return out

    # ------------------------------------------------------------------
    # Introspection / iteration
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Entry]:
        """All leaf entries, in tree order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.children
            else:
                stack.extend(node.children)

    def points(self) -> list[Point]:
        return [e.point for e in self.entries()]

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            if not node.children:
                break
            node = node.children[0]
            h += 1
        return h

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on breach."""

        def check(node: RTreeNode, depth: int, leaf_depths: list[int]) -> None:
            if node is not self.root and len(node.children) == 0:
                raise AssertionError("empty non-root node")
            for c in node.children:
                if not node.rect.contains_rect(c.rect):
                    raise AssertionError("child MBR escapes parent MBR")
            if node.is_leaf:
                leaf_depths.append(depth)
            else:
                for c in node.children:
                    check(c, depth + 1, leaf_depths)

        leaf_depths: list[int] = []
        check(self.root, 0, leaf_depths)
        if leaf_depths and len(set(leaf_depths)) != 1:
            raise AssertionError(f"leaves at unequal depths: {set(leaf_depths)}")
        if sum(1 for _ in self.entries()) != self._size:
            raise AssertionError("size counter out of sync")

    # ------------------------------------------------------------------
    # SpatialIndex query protocol (see repro.index.backend)
    # ------------------------------------------------------------------

    def incremental_nearest(self, query: Point) -> Iterator[Entry]:
        """Yield leaf entries in increasing distance from ``query``.

        Classic best-first traversal with a priority queue keyed on
        ``min_dist``; optimal in the number of node accesses.
        """
        for _, e in best_first_search(
            self.root,
            lambda rect: rect.min_dist(query),
            lambda entry: entry.point.dist(query),
        ):
            yield e

    def knn(self, query: Point, k: int) -> list[Entry]:
        """The ``k`` nearest entries (fewer if the tree is small)."""
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_nearest(query), k))

    def nearest(self, query: Point) -> Optional[Entry]:
        result = self.knn(query, 1)
        return result[0] if result else None

    def bulk_update(
        self,
        adds: Sequence[tuple[Point, Any]] = (),
        removes: Sequence[tuple[Point, Any]] = (),
    ) -> None:
        """Apply many inserts and deletes (a loop of Guttman ops).

        Same contract as the flat backend (via the shared
        :func:`resolve_removals`): all removals are resolved before
        anything mutates, so a ``KeyError`` for a missing entry leaves
        the tree untouched.
        """
        snapshot = [(e.point, e.payload) for e in self.entries()]
        for i in resolve_removals(snapshot, removes):
            self.delete(*snapshot[i])
        for point, payload in adds:
            self.insert(point, payload)

    def knn_many(self, queries: Sequence[Point], k: int) -> list[list[Entry]]:
        """k-NN per query point (the object backend has no batching)."""
        return [self.knn(q, k) for q in queries]

    def range_many(self, windows: Sequence[Rect]) -> list[list[Entry]]:
        """Window query per window (the object backend has no batching)."""
        return [self.range_query(w) for w in windows]

    def range_query(self, window: Rect) -> list[Entry]:
        """All entries whose point lies inside ``window``."""
        return pruned_entry_scan(
            self.root,
            lambda rect: rect.intersects(window),
            lambda entry: window.contains_point(entry.point),
        )

    def circle_range_query(self, center: Point, radius: float) -> list[Entry]:
        """All entries within ``radius`` of ``center``."""
        return pruned_entry_scan(
            self.root,
            lambda rect: rect.min_dist(center) <= radius,
            lambda entry: entry.point.dist(center) <= radius,
        )

    def incremental_gnn(
        self, users: Sequence[Point], agg: str = "max"
    ) -> Iterator[tuple[float, Entry]]:
        """Yield ``(aggregate_distance, entry)`` in increasing order.

        The per-node lower bound aggregates per-user ``min_dist``
        values (MAX or SUM), the MBM method of ref. [24].
        """
        if not users:
            raise ValueError("user group must be non-empty")
        if agg == "max":
            node_bound = lambda rect: max(rect.min_dist(u) for u in users)
            entry_score = lambda e: max(e.point.dist(u) for u in users)
        elif agg == "sum":
            node_bound = lambda rect: sum(rect.min_dist(u) for u in users)
            entry_score = lambda e: sum(e.point.dist(u) for u in users)
        else:
            raise ValueError(f"unknown aggregate: {agg!r}")
        return best_first_search(self.root, node_bound, entry_score)

    def gnn(
        self, users: Sequence[Point], k: int = 1, agg: str = "max"
    ) -> list[tuple[float, Entry]]:
        if k <= 0:
            return []
        return list(itertools.islice(self.incremental_gnn(users, agg), k))

    def gnn_many(
        self, groups: Sequence[Sequence[Point]], k: int = 1, agg: str = "max"
    ) -> list[list[tuple[float, Entry]]]:
        """k-GNN per group (the object backend has no batching)."""
        return [self.gnn(g, k, agg) for g in groups]

    def intersect_balls(
        self,
        centers: Sequence[Point],
        radii: Sequence[float],
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points within ``radii[i]`` of ``centers[i]`` for EVERY i.

        A node survives only if it intersects every ball — the MBR
        pruning rule of Theorem 3 (Fig. 10).
        """
        pairs = list(zip(centers, radii))
        entries = pruned_entry_scan(
            self.root,
            lambda rect: all(rect.min_dist(c) <= r for c, r in pairs),
            lambda e: e.point != exclude
            and all(e.point.dist(c) <= r for c, r in pairs),
            stats,
        )
        return [e.point for e in entries]

    def within_dist_sum(
        self,
        centers: Sequence[Point],
        threshold: float,
        exclude: Optional[Point] = None,
        stats=None,
    ) -> list[Point]:
        """Points whose summed distance to ``centers`` is <= threshold
        (MBR analogue sums per-user min-distances, Theorem 6)."""
        entries = pruned_entry_scan(
            self.root,
            lambda rect: sum(rect.min_dist(c) for c in centers) <= threshold,
            lambda e: e.point != exclude
            and sum(e.point.dist(c) for c in centers) <= threshold,
            stats,
        )
        return [e.point for e in entries]

    def scan(self, exclude: Optional[Point] = None, stats=None) -> list[Point]:
        """All points (minus ``exclude``) via a full counted traversal."""
        entries = pruned_entry_scan(
            self.root,
            lambda rect: True,
            lambda e: e.point != exclude,
            stats,
        )
        return [e.point for e in entries]


def resolve_removals_indexed(
    candidates_for: Callable[[Any], Sequence[int]],
    payload_of: Callable[[int], Any],
    removes: Sequence[tuple[Any, Any]],
) -> list[int]:
    """Match each removal to a distinct live id through a lookup map.

    The one definition of the bulk-removal contract, shared by every
    backend: payload-specific removals are matched first so wildcards
    (payload None) can't starve them, each removal consumes a distinct
    entry, and a ``KeyError`` for any unmatched removal is raised
    before the caller mutates anything (all-or-nothing batches).

    ``candidates_for(key)`` yields candidate ids in live (insertion)
    order and ``payload_of(id)`` resolves an id's payload — so a
    backend that already maintains a key -> ids map (the delta-layer
    live map, the network index's node buckets) resolves a batch in
    O(batch) instead of materializing all n live items per call.
    """
    victims: list[int] = []
    consumed: set[int] = set()
    ordered = sorted(removes, key=lambda r: r[1] is None)
    for key, payload in ordered:
        for i in candidates_for(key):
            if i not in consumed and (
                payload is None or payload_of(i) == payload
            ):
                consumed.add(i)
                victims.append(i)
                break
        else:
            raise KeyError(f"no entry for {key} (payload={payload!r})")
    return victims


def resolve_removals(
    items: Sequence[tuple[Point, Any]],
    removes: Sequence[tuple[Point, Any]],
) -> list[int]:
    """Match each removal to a distinct index into ``items``.

    The materialized-list face of :func:`resolve_removals_indexed`,
    for backends that hold their live items as one list (the object
    R-tree; anything without an incremental live map).
    """
    by_point: dict[Point, list[int]] = {}
    for i, (p, _) in enumerate(items):
        by_point.setdefault(p, []).append(i)
    return resolve_removals_indexed(
        lambda p: by_point.get(p, ()), lambda i: items[i][1], removes
    )


# ----------------------------------------------------------------------
# Shared traversals: every object-backend query is one of these two.
# ----------------------------------------------------------------------


def best_first_search(
    root: RTreeNode,
    node_bound: Callable[[Rect], float],
    entry_score: Callable[[Entry], float],
) -> Iterator[tuple[float, Entry]]:
    """Yield ``(score, entry)`` in increasing score order.

    ``node_bound`` must lower-bound ``entry_score`` over every entry in
    the node's subtree; both plain NN (score = distance to one query
    point) and aggregate GNN (MAX/SUM over a group) satisfy this.
    """
    counter = itertools.count()  # tie-breaker: heap never compares nodes
    heap: list[tuple[float, int, bool, object]] = [
        (node_bound(root.rect), next(counter), False, root)
    ]
    while heap:
        d, _, is_entry, item = heapq.heappop(heap)
        if is_entry:
            yield d, item  # type: ignore[misc]
            continue
        node: RTreeNode = item  # type: ignore[assignment]
        if node.is_leaf:
            for e in node.children:
                heapq.heappush(heap, (entry_score(e), next(counter), True, e))
        else:
            for c in node.children:
                heapq.heappush(heap, (node_bound(c.rect), next(counter), False, c))


def pruned_entry_scan(
    root: RTreeNode,
    node_survives: Callable[[Rect], bool],
    entry_accept: Callable[[Entry], bool],
    stats=None,
) -> list[Entry]:
    """Depth-first scan skipping subtrees whose MBR fails the test.

    Every node whose MBR is examined counts as one index node access
    (matching the paper's accounting for Theorems 3/6).
    """
    out: list[Entry] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if stats is not None:
            stats.index_node_accesses += 1
        if not node_survives(node.rect):
            continue
        if node.is_leaf:
            out.extend(e for e in node.children if entry_accept(e))
        else:
            stack.extend(node.children)
    return out
