"""Scene rendering: users, POIs, meeting point and safe regions."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.region import TileRegion
from repro.viz.svg import SvgCanvas

_USER_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def _scene_bounds(
    users: Sequence[Point],
    regions: Sequence[Circle | TileRegion],
    po: Optional[Point],
    margin: float = 0.15,
) -> Rect:
    xs = [u.x for u in users]
    ys = [u.y for u in users]
    for region in regions:
        if isinstance(region, Circle):
            bounds = region.bounding_rect()
        else:
            bounds = region.bounding_rect()
        xs.extend((bounds.x_lo, bounds.x_hi))
        ys.extend((bounds.y_lo, bounds.y_hi))
    if po is not None:
        xs.append(po.x)
        ys.append(po.y)
    rect = Rect(min(xs), min(ys), max(xs), max(ys))
    pad = max(rect.width, rect.height, 1.0) * margin
    return Rect(rect.x_lo - pad, rect.y_lo - pad, rect.x_hi + pad, rect.y_hi + pad)


def render_scene(
    users: Sequence[Point],
    regions: Sequence[Circle | TileRegion],
    po: Optional[Point] = None,
    pois: Sequence[Point] = (),
    width: int = 800,
    height: int = 800,
    title: str = "",
) -> str:
    """An SVG of the group, their safe regions, POIs and the result.

    Mirrors the paper's Figs. 1b / 7: one color per user, gray POIs,
    the optimal meeting point as a black star-like marker.
    """
    if len(users) != len(regions):
        raise ValueError("one region per user required")
    world = _scene_bounds(users, regions, po)
    canvas = SvgCanvas(world, width, height)
    marker = max(world.width, world.height) / 150.0

    for p in pois:
        if world.contains_point(p):
            canvas.circle(p.x, p.y, marker * 0.4, fill="#bbbbbb", stroke="none")

    for k, (user, region) in enumerate(zip(users, regions)):
        color = _USER_COLORS[k % len(_USER_COLORS)]
        if isinstance(region, Circle):
            canvas.circle(
                region.center.x,
                region.center.y,
                region.radius,
                fill=color,
                stroke=color,
                opacity=0.25,
            )
        else:
            for tile in region:
                canvas.rect(
                    tile.rect.x_lo,
                    tile.rect.y_lo,
                    tile.rect.x_hi,
                    tile.rect.y_hi,
                    fill=color,
                    stroke=color,
                    opacity=0.3,
                )
        canvas.circle(user.x, user.y, marker, fill=color, stroke="black")
        canvas.text(user.x + marker, user.y + marker, f"u{k + 1}", size=14)

    if po is not None:
        canvas.circle(po.x, po.y, marker * 1.3, fill="black", stroke="black")
        canvas.text(po.x + marker, po.y - 2 * marker, "po", size=16)

    if title:
        canvas.raw(
            f'<text x="10" y="22" font-size="18" font-family="sans-serif">'
            f"{title}</text>"
        )
    return canvas.render()


def render_network_scene(
    space,
    regions: Sequence,
    users: Sequence = (),
    po=None,
    pois: Sequence = (),
    width: int = 800,
    height: int = 800,
) -> str:
    """An SVG of a road network with covered intervals highlighted.

    ``space`` is a :class:`~repro.network_ext.space.NetworkSpace` whose
    graph nodes carry ``pos`` attributes; ``regions`` are
    :class:`~repro.network_ext.tile_msr.NetworkTileRegion` or
    :class:`~repro.network_ext.ball.NetworkBall` objects.
    """
    graph = space.graph
    positions = {n: graph.nodes[n]["pos"] for n in graph.nodes}
    xs = [p.x for p in positions.values()]
    ys = [p.y for p in positions.values()]
    pad = (max(xs) - min(xs) or 1.0) * 0.05
    world = Rect(min(xs) - pad, min(ys) - pad, max(xs) + pad, max(ys) + pad)
    canvas = SvgCanvas(world, width, height)
    marker = world.width / 120.0

    for u, v in graph.edges:
        a, b = positions[u], positions[v]
        canvas.line(a.x, a.y, b.x, b.y, stroke="#cccccc", stroke_width=1.5)

    def _lerp(a, b, t):
        return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)

    for k, region in enumerate(regions):
        color = _USER_COLORS[k % len(_USER_COLORS)]
        if hasattr(region, "intervals"):
            segments = [
                (iv.u, iv.v, iv.lo, iv.hi) for iv in region.intervals()
            ]
        else:  # NetworkBall: prefix/suffix coverage
            segments = []
            for u, v, cover_u, cover_v in region.covered_segments():
                length = space.edge_length(u, v)
                segments.append((u, v, 0.0, cover_u))
                segments.append((u, v, length - cover_v, length))
        for u, v, lo, hi in segments:
            if hi <= lo:
                continue
            length = space.edge_length(u, v)
            a, b = positions[u], positions[v]
            p1 = _lerp(a, b, lo / length)
            p2 = _lerp(a, b, hi / length)
            canvas.line(p1.x, p1.y, p2.x, p2.y, stroke=color, stroke_width=4.0)

    for q in pois:
        p = positions[q]
        canvas.circle(p.x, p.y, marker * 0.6, fill="#888888", stroke="none")
    for k, user in enumerate(users):
        anchors = space._anchors(user)
        node, _ = anchors[0]
        if user.edge is not None:
            u, v = user.edge
            length = space.edge_length(u, v)
            p = _lerp(positions[u], positions[v], user.offset / length)
        else:
            p = positions[user.node]
        canvas.circle(p.x, p.y, marker, fill=_USER_COLORS[k % len(_USER_COLORS)], stroke="black")
    if po is not None:
        p = positions[po]
        canvas.circle(p.x, p.y, marker * 1.4, fill="black", stroke="black")
    return canvas.render()
