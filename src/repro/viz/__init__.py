"""SVG visualization of safe regions and experiment figures.

The paper communicates its ideas through pictures (Figs. 1, 5-10);
this subpackage renders the equivalent scenes from live data — users,
POIs, the optimal meeting point, circular and tile-based safe regions —
and plots experiment series as line charts.  Pure-string SVG, no
plotting dependency.
"""

from repro.viz.svg import SvgCanvas
from repro.viz.scene import render_scene, render_network_scene
from repro.viz.chart import render_chart

__all__ = ["SvgCanvas", "render_scene", "render_network_scene", "render_chart"]
