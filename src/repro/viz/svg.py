"""A minimal SVG canvas: world-coordinate drawing, string output."""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.geometry.rect import Rect


class SvgCanvas:
    """Accumulates SVG elements in world coordinates.

    The world rectangle maps onto a ``width x height`` pixel viewport
    with the y-axis flipped (SVG grows downward; our world grows
    upward).
    """

    def __init__(self, world: Rect, width: int = 800, height: int = 800):
        if width <= 0 or height <= 0:
            raise ValueError("viewport must be positive")
        if world.width <= 0 or world.height <= 0:
            raise ValueError("world rectangle must have positive area")
        self.world = world
        self.width = width
        self.height = height
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    # Coordinate transforms
    # ------------------------------------------------------------------

    def tx(self, x: float) -> float:
        return (x - self.world.x_lo) / self.world.width * self.width

    def ty(self, y: float) -> float:
        return self.height - (y - self.world.y_lo) / self.world.height * self.height

    def scale(self, length: float) -> float:
        return length / self.world.width * self.width

    # ------------------------------------------------------------------
    # Drawing primitives
    # ------------------------------------------------------------------

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<circle cx="{self.tx(cx):.2f}" cy="{self.ty(cy):.2f}" '
            f'r="{max(self.scale(r), 0.5):.2f}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def rect(
        self,
        x_lo: float,
        y_lo: float,
        x_hi: float,
        y_hi: float,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 0.5,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<rect x="{self.tx(x_lo):.2f}" y="{self.ty(y_hi):.2f}" '
            f'width="{self.scale(x_hi - x_lo):.2f}" '
            f'height="{self.scale(y_hi - y_lo):.2f}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<line x1="{self.tx(x1):.2f}" y1="{self.ty(y1):.2f}" '
            f'x2="{self.tx(x2):.2f}" y2="{self.ty(y2):.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        fill: str = "black",
        anchor: str = "start",
    ) -> None:
        self._elements.append(
            f'<text x="{self.tx(x):.2f}" y="{self.ty(y):.2f}" '
            f'font-size="{size}" fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def raw(self, element: str) -> None:
        """Append a pre-built SVG element (pixel coordinates)."""
        self._elements.append(element)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def render(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n"
            f"</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
