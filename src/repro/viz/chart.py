"""Line charts for experiment results (the paper's figure style)."""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.experiments.harness import ExperimentResult

_SERIES_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e")
_MARKERS = ("circle", "square", "diamond", "triangle")


def render_chart(
    result: ExperimentResult,
    measure: str = "update_events",
    width: int = 640,
    height: int = 440,
    title: str | None = None,
) -> str:
    """An SVG line chart of one measure across the sweep, per method."""
    series = result.series(measure)
    if not series:
        raise ValueError("empty experiment result")
    x_labels: list[str] = []
    for row in result.rows:
        if row.x_label not in x_labels:
            x_labels.append(row.x_label)
    values = [v for points in series.values() for _, v in points]
    v_max = max(values) if values else 1.0
    v_max = v_max if v_max > 0 else 1.0

    margin_left, margin_right = 70, 150
    margin_top, margin_bottom = 50, 50
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def px(i: int) -> float:
        if len(x_labels) == 1:
            return margin_left + plot_w / 2
        return margin_left + plot_w * i / (len(x_labels) - 1)

    def py(v: float) -> float:
        return margin_top + plot_h * (1.0 - v / (v_max * 1.05))

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<rect width="100%" height="100%" fill="white"/>',
        # Axes
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="black"/>',
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="black"/>',
    ]
    header = title if title is not None else f"{result.figure}: {measure}"
    parts.append(
        f'<text x="{width // 2}" y="24" font-size="16" text-anchor="middle" '
        f'font-family="sans-serif">{escape(header)}</text>'
    )
    # X tick labels.
    for i, label in enumerate(x_labels):
        parts.append(
            f'<text x="{px(i):.1f}" y="{margin_top + plot_h + 20}" '
            f'font-size="12" text-anchor="middle" font-family="sans-serif">'
            f"{escape(label)}</text>"
        )
    parts.append(
        f'<text x="{margin_left + plot_w // 2}" y="{height - 8}" '
        f'font-size="12" text-anchor="middle" font-family="sans-serif">'
        f"{escape(result.x_name)}</text>"
    )
    # Y gridlines and labels.
    for k in range(5):
        v = v_max * 1.05 * k / 4
        y = py(v)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" stroke="#eeeeee"/>'
        )
        label = f"{v:.3g}"
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end" font-family="sans-serif">{label}</text>'
        )
    # Series.
    for s, (method, points) in enumerate(series.items()):
        color = _SERIES_COLORS[s % len(_SERIES_COLORS)]
        by_x = dict(points)
        coords = [
            (px(i), py(by_x[x])) for i, x in enumerate(x_labels) if x in by_x
        ]
        path = " ".join(
            f"{'M' if k == 0 else 'L'}{x:.1f},{y:.1f}"
            for k, (x, y) in enumerate(coords)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in coords:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}"/>'
            )
        # Legend entry.
        ly = margin_top + 18 * s
        lx = margin_left + plot_w + 14
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 28}" y="{ly + 4}" font-size="12" '
            f'font-family="sans-serif">{escape(method)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
