"""The Euclidean plane as a :class:`~repro.space.base.Space`.

A thin adapter over the spatial backends of :mod:`repro.index`: the
positions are :class:`~repro.geometry.point.Point`, the metric is L2,
the balls are :class:`~repro.geometry.circle.Circle` and the POI index
is whatever :func:`repro.index.backend.build_index` produced.  This is
the space every session lived in before the abstraction existed, which
is why :class:`repro.service.MPNService` wraps a bare tree into one
automatically (:func:`repro.space.as_space`).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate, aggregate_dist, find_gnn
from repro.index.backend import SpatialIndex


class EuclideanSpace:
    """Planar positions over a :class:`SpatialIndex` of POIs."""

    kind = "euclidean"

    def __init__(self, tree: SpatialIndex):
        self._tree = tree

    @property
    def index(self) -> SpatialIndex:
        return self._tree

    def distance(self, a: Point, b: Point) -> float:
        return a.dist(b)

    def aggregate_dist(
        self, candidate: Point, users: Sequence[Point], objective: Aggregate
    ) -> float:
        return aggregate_dist(candidate, users, objective)

    def gnn(
        self, users: Sequence[Point], k: int = 1, objective: Aggregate = Aggregate.MAX
    ) -> list[tuple[float, Point]]:
        return [
            (dist, entry.point)
            for dist, entry in find_gnn(self._tree, users, k, objective)
        ]

    def ball(self, center: Point, radius: float) -> Circle:
        return Circle(center, radius)

    def bulk_update(
        self,
        adds: Sequence[tuple[Point, Any]] = (),
        removes: Sequence[tuple[Point, Any]] = (),
    ) -> None:
        self._tree.bulk_update(adds, removes)

    def poi_count(self) -> int:
        return len(self._tree)

    def replicate(self) -> "EuclideanSpace":
        """An independent copy over a freshly packed index.

        The replica uses the same backend class, node capacity and
        (where the backend maintains deltas) repack threshold, so
        queries traverse identically-shaped trees and answers stay
        bit-identical to the original (ties between coincident points
        may reorder payloads, never distances or meeting points).
        """
        entries = list(self._tree.entries())
        kwargs: dict[str, Any] = {}
        delta_fraction = getattr(self._tree, "delta_fraction", None)
        if delta_fraction is not None:
            kwargs["delta_fraction"] = delta_fraction
        clone = type(self._tree).bulk_load(
            [e.point for e in entries],
            payloads=[e.payload for e in entries],
            max_entries=self._tree.max_entries,
            **kwargs,
        )
        return EuclideanSpace(clone)
