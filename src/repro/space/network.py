"""The road network as a :class:`~repro.space.base.Space`.

Bundles the metric (:class:`~repro.network_ext.space.NetworkSpace`,
exact shortest-path distances) with a POI backend
(:class:`~repro.index.network.NetworkIndex`, CSR adjacency + bulk
distance kernels) into the object the serving stack consumes: sessions
opened on a :class:`NetworkPOISpace` are served by the ``net_circle``
/ ``net_tile`` registry strategies with full feature parity with
Euclidean sessions — report/probe/notify, batched POI churn with
Lemma-1 selective re-notification, per-session and service-wide
metrics.

Positions are :class:`~repro.network_ext.space.NetworkPosition`; POIs
are graph nodes.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

from repro.gnn.aggregate import Aggregate
from repro.index.network import NetworkIndex
from repro.index.oracle import OracleConfig
from repro.network_ext.ball import NetworkBall
from repro.network_ext.gnn import network_aggregate_dist
from repro.network_ext.space import NetworkPosition, NetworkSpace


def _as_position(target: object) -> NetworkPosition:
    if isinstance(target, NetworkPosition):
        return target
    return NetworkPosition.at_node(target)


class NetworkPOISpace:
    """Road-network positions over a :class:`NetworkIndex` of POIs."""

    kind = "network"

    def __init__(
        self,
        space: NetworkSpace,
        pois: Sequence[Hashable] = (),
        payloads: Optional[Sequence[Any]] = None,
        delta_fraction: Optional[float] = None,
        oracle_config: Optional[OracleConfig] = None,
    ):
        self.space = space
        index_kwargs = {} if delta_fraction is None else {
            "delta_fraction": delta_fraction
        }
        self._index = NetworkIndex(
            space, pois, payloads, oracle_config=oracle_config, **index_kwargs
        )
        # One SSSP per anchor, not two: region construction and tile
        # verification read their distance maps from the same LRU rows
        # the GNN kernel computes.
        space.set_distance_provider(self._index.distance_map)
        # Pair queries skip the {node: distance} dict entirely — one
        # row lookup instead of a full-map materialization per anchor.
        space.set_pair_distance_provider(self._index.node_pair_distance)
        if self._index.oracle.bounded_active:
            # City scale: safe-region construction settles only the
            # ball it covers (early-exit Dijkstra) instead of paying a
            # whole-graph row per anchor.
            space.set_bounded_distance_provider(
                self._index.bounded_distance_map
            )

    @classmethod
    def from_grid(
        cls,
        pois: Sequence[Hashable] = (),
        oracle_config: Optional[OracleConfig] = None,
        **grid_kwargs,
    ) -> "NetworkPOISpace":
        """A serving space over :meth:`NetworkSpace.from_grid`."""
        return cls(
            NetworkSpace.from_grid(**grid_kwargs),
            pois,
            oracle_config=oracle_config,
        )

    @property
    def index(self) -> NetworkIndex:
        return self._index

    @property
    def graph(self):
        return self.space.graph

    def distance(self, a: object, b: object) -> float:
        return self.space.distance(_as_position(a), _as_position(b))

    def aggregate_dist(
        self, candidate: object, users: Sequence[object], objective: Aggregate
    ) -> float:
        return network_aggregate_dist(
            self.space, candidate, [_as_position(u) for u in users], objective
        )

    def gnn(
        self, users: Sequence[object], k: int = 1, objective: Aggregate = Aggregate.MAX
    ) -> list[tuple[float, Hashable]]:
        return self._index.gnn(users, k, objective)

    def ball(self, center: object, radius: float) -> NetworkBall:
        if radius == float("inf"):
            radius = self.space.total_edge_length()
        return NetworkBall(self.space, _as_position(center), radius)

    def bulk_update(
        self,
        adds: Sequence[tuple[Hashable, Any]] = (),
        removes: Sequence[tuple[Hashable, Any]] = (),
    ) -> None:
        self._index.bulk_update(adds, removes)

    def poi_count(self) -> int:
        return len(self._index)

    def replicate(self) -> "NetworkPOISpace":
        """An independent POI replica over the shared road graph.

        The graph (and its Dijkstra/CSR distance machinery) is
        immutable and POI-independent, so replicas share the
        :class:`NetworkSpace` — and through it the one
        :class:`~repro.index.oracle.DistanceOracle` row cache — while
        each owning its POI buckets: POI churn against one replica
        never leaks into another, and an N-shard cluster holds one
        distance cache, not N.  All replicas read the same packed
        graph, so the provided distances are identical whichever
        serves.
        """
        items = self._index.items()
        return NetworkPOISpace(
            self.space,
            pois=[node for node, _ in items],
            payloads=[payload for _, payload in items],
            delta_fraction=self._index.delta_fraction,
        )
