"""Metric spaces: one serving stack, many worlds.

:class:`Space` (``base``) is the contract; :class:`EuclideanSpace`
(``euclidean``) wraps a spatial-index tree and is what bare trees are
coerced into; :class:`repro.space.network.NetworkPOISpace` serves road
networks (imported lazily by callers — it pulls in :mod:`networkx`
through :mod:`repro.network_ext`, which this package's own import must
not require).
"""

from repro.space.base import Space
from repro.space.euclidean import EuclideanSpace


def as_space(tree_or_space: object) -> Space:
    """Coerce a bare spatial index into a Space (identity on spaces)."""
    if isinstance(tree_or_space, Space):
        return tree_or_space
    return EuclideanSpace(tree_or_space)


def replicate_space(space: Space) -> Space:
    """An independent copy of ``space`` holding the same POI set.

    The cluster front door (:class:`repro.cluster.MPNCluster`) gives
    every shard its own index replica — transport-honest state
    ownership, with POI churn fanned out to every copy.  Spaces opt in
    by implementing ``replicate()`` (:class:`EuclideanSpace` rebuilds
    its index from the live entries;
    :class:`repro.space.network.NetworkPOISpace` re-buckets its POIs
    over the shared immutable road graph).
    """
    replicate = getattr(space, "replicate", None)
    if replicate is None:
        raise TypeError(
            f"space {type(space).__name__} does not support replication; "
            "construct the cluster with a space_factory instead"
        )
    return replicate()


__all__ = ["Space", "EuclideanSpace", "as_space", "replicate_space"]
