"""Metric spaces: one serving stack, many worlds.

:class:`Space` (``base``) is the contract; :class:`EuclideanSpace`
(``euclidean``) wraps a spatial-index tree and is what bare trees are
coerced into; :class:`repro.space.network.NetworkPOISpace` serves road
networks (imported lazily by callers — it pulls in :mod:`networkx`
through :mod:`repro.network_ext`, which this package's own import must
not require).
"""

from repro.space.base import Space
from repro.space.euclidean import EuclideanSpace


def as_space(tree_or_space: object) -> Space:
    """Coerce a bare spatial index into a Space (identity on spaces)."""
    if isinstance(tree_or_space, Space):
        return tree_or_space
    return EuclideanSpace(tree_or_space)


def replicate_space(space: Space) -> Space:
    """An independent copy of ``space`` holding the same POI set.

    The cluster front door (:class:`repro.cluster.MPNCluster`) takes
    one defensive copy of a caller-owned space before publishing it to
    its shards (:func:`share_space`), so churn routed around the front
    door can never corrupt the serving state.  Spaces opt in by
    implementing ``replicate()`` (:class:`EuclideanSpace` rebuilds its
    index from the live entries;
    :class:`repro.space.network.NetworkPOISpace` re-buckets its POIs
    over the shared immutable road graph).
    """
    replicate = getattr(space, "replicate", None)
    if replicate is None:
        raise TypeError(
            f"space {type(space).__name__} does not support replication; "
            "construct the cluster with a space_factory instead"
        )
    return replicate()


class SharedSpace:
    """A copy-on-write published view of one space, shared by readers.

    The cluster's epoch model: every shard holds the SAME
    ``SharedSpace`` instead of its own replica, so the POI index is
    built once no matter how many shards serve it.  All reads delegate
    straight to the underlying space; the one write path,
    :meth:`bulk_update`, applies the delta batch to the underlying
    index (which absorbs it through its tombstone/arena delta layer)
    and bumps ``epoch`` — publishing the post-churn snapshot to every
    reader at once.  Readers between epochs always see a complete
    index state: the delta layer mutates all-or-nothing per batch.
    """

    def __init__(self, base: Space):
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "epoch", 0)

    def bulk_update(self, adds=(), removes=()) -> None:
        self._base.bulk_update(adds, removes)
        object.__setattr__(self, "epoch", self.epoch + 1)

    def __getattr__(self, name: str):
        return getattr(object.__getattribute__(self, "_base"), name)

    def __repr__(self) -> str:
        return f"SharedSpace(epoch={self.epoch}, base={self._base!r})"


def share_space(space: Space) -> SharedSpace:
    """Wrap ``space`` for epoch-published sharing (identity if shared)."""
    if isinstance(space, SharedSpace):
        return space
    return SharedSpace(space)


__all__ = [
    "Space",
    "EuclideanSpace",
    "SharedSpace",
    "as_space",
    "replicate_space",
    "share_space",
]
