"""Metric spaces: one serving stack, many worlds.

:class:`Space` (``base``) is the contract; :class:`EuclideanSpace`
(``euclidean``) wraps a spatial-index tree and is what bare trees are
coerced into; :class:`repro.space.network.NetworkPOISpace` serves road
networks (imported lazily by callers — it pulls in :mod:`networkx`
through :mod:`repro.network_ext`, which this package's own import must
not require).
"""

from repro.space.base import Space
from repro.space.euclidean import EuclideanSpace


def as_space(tree_or_space: object) -> Space:
    """Coerce a bare spatial index into a Space (identity on spaces)."""
    if isinstance(tree_or_space, Space):
        return tree_or_space
    return EuclideanSpace(tree_or_space)


__all__ = ["Space", "EuclideanSpace", "as_space"]
