"""The ``Space`` protocol: metric + position type + POI index + regions.

A *space* is everything the serving stack needs to know about the
world a session lives in:

* the **metric** — ``distance`` between two positions, and the
  aggregate distances built from it (Definitions 2 and 7);
* the **position type** — ``Point`` for the Euclidean plane,
  :class:`~repro.network_ext.space.NetworkPosition` for road networks;
  the protocol never names it, every method is generic in it;
* the **POI index** — the backend strategies compute against
  (:class:`~repro.index.backend.SpatialIndex` /
  :class:`~repro.index.network.NetworkIndex`), exposed as ``index``
  and mutated through ``bulk_update``;
* the **region primitives** — ``ball(center, radius)`` builds the
  Theorem-1 safe region (a circle / a network ball); the regions a
  space produces answer ``min_dist`` / ``max_dist`` / ``contains_point``
  for that space's positions, which is all Lemma 1 and the session
  facade ever ask of them.

The MSR theorems only use the triangle inequality, so one serving
stack (:class:`repro.service.MPNService`, :func:`repro.simulation.run_service`)
serves every space: sessions carry their space, strategies receive its
index, and Euclidean and network fleets coexist on one service.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.gnn.aggregate import Aggregate


@runtime_checkable
class Space(Protocol):
    """One metric world: positions, distances, POIs, safe regions."""

    kind: str  # "euclidean" | "network" | ...

    @property
    def index(self) -> object:
        """The POI backend safe-region strategies compute against."""
        ...

    def distance(self, a: object, b: object) -> float:
        """The metric (must satisfy the triangle inequality)."""
        ...

    def aggregate_dist(
        self, candidate: object, users: Sequence[object], objective: Aggregate
    ) -> float:
        """``||candidate, U||_max`` or ``||candidate, U||_sum``."""
        ...

    def gnn(
        self, users: Sequence[object], k: int = 1, objective: Aggregate = Aggregate.MAX
    ) -> list[tuple[float, object]]:
        """The ``k`` best meeting points as ``(aggregate_dist, poi)``."""
        ...

    def ball(self, center: object, radius: float) -> object:
        """The set of positions within ``radius`` of ``center``
        (Theorem 1's safe region; ``inf`` means the whole space)."""
        ...

    def bulk_update(
        self,
        adds: Sequence[tuple[object, object]] = (),
        removes: Sequence[tuple[object, object]] = (),
    ) -> None:
        """Apply batched POI churn to the space's index."""
        ...

    def poi_count(self) -> int: ...
