"""Experiment scales: paper-faithful vs laptop/CI-sized runs.

The paper's configuration (Table 2, Section 7.1): N = 21,287 POIs, 60
trajectories of 10,000+ timestamps split into 10 groups, alpha = 30,
L = 2.  That scale takes hours in pure Python, so the default scales
shrink the workload while keeping every ratio the experiments measure
(tiles vs circles, buffered vs unbuffered) intact.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by every figure harness."""

    name: str
    n_pois: int
    n_trajectories: int
    n_timestamps: int
    max_groups: int
    alpha: int
    split_level: int
    default_group_size: int = 3
    speed: float = 60.0


BENCH = ExperimentScale(
    name="bench",
    n_pois=600,
    n_trajectories=6,
    n_timestamps=200,
    max_groups=1,
    alpha=8,
    split_level=1,
)

SMALL = ExperimentScale(
    name="small",
    n_pois=4000,
    n_trajectories=12,
    n_timestamps=2000,
    max_groups=4,
    alpha=30,
    split_level=2,
)

FULL = ExperimentScale(
    name="full",
    n_pois=21287,  # the paper's N
    n_trajectories=60,
    n_timestamps=10000,
    max_groups=10,
    alpha=30,
    split_level=2,
)

SCALES = {s.name: s for s in (BENCH, SMALL, FULL)}
