"""Experiment harness: regenerate every figure of Section 7.

Each figure has a config builder in :mod:`repro.experiments.figures`
and runs through :func:`repro.experiments.harness.run_experiment`,
which produces the same series the paper plots (update frequency,
communication cost in packets, CPU time) as printable rows.
"""

from repro.experiments.scales import ExperimentScale, SCALES
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentRow,
    format_table,
    run_experiment,
)
from repro.experiments.figures import (
    fig13_group_size,
    fig14_data_size,
    fig15_speed,
    fig16_buffering,
    fig17_sum_group_size,
    fig18_sum_data_size,
    fig19_sum_buffering,
    ALL_FIGURES,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "ExperimentResult",
    "ExperimentRow",
    "format_table",
    "run_experiment",
    "fig13_group_size",
    "fig14_data_size",
    "fig15_speed",
    "fig16_buffering",
    "fig17_sum_group_size",
    "fig18_sum_data_size",
    "fig19_sum_buffering",
    "ALL_FIGURES",
]
