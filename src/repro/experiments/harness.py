"""Generic sweep runner producing the paper's figure series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.index.backend import SpatialIndex
from repro.mobility.trajectory import Trajectory
from repro.simulation import Policy, SimulationMetrics, run_groups


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis value of a figure: a label plus the runnable inputs."""

    label: str
    groups: Sequence[Sequence[Trajectory]]
    tree: SpatialIndex


@dataclass
class ExperimentRow:
    """One (method, x-value) cell with the paper's three measures."""

    method: str
    x_label: str
    update_frequency: float
    update_events: int
    packets: int
    cpu_seconds: float
    metrics: SimulationMetrics = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class ExperimentResult:
    """All rows of one figure, with pretty-printing."""

    figure: str
    x_name: str
    rows: list[ExperimentRow]

    def series(self, measure: str) -> dict[str, list[tuple[str, float]]]:
        """Per-method series of (x_label, value) — what the paper plots."""
        out: dict[str, list[tuple[str, float]]] = {}
        for row in self.rows:
            out.setdefault(row.method, []).append(
                (row.x_label, getattr(row, measure))
            )
        return out

    def methods(self) -> list[str]:
        seen: list[str] = []
        for row in self.rows:
            if row.method not in seen:
                seen.append(row.method)
        return seen


def run_experiment(
    figure: str,
    x_name: str,
    points: Sequence[SweepPoint],
    policies: Sequence[Policy],
    n_timestamps: int | None = None,
    check_every: int = 0,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Run every policy at every sweep point; collect the figure rows."""
    rows: list[ExperimentRow] = []
    for point in points:
        for policy in policies:
            if progress is not None:
                progress(f"{figure}: {policy.name} @ {x_name}={point.label}")
            metrics = run_groups(
                policy, point.groups, point.tree, n_timestamps, check_every
            )
            rows.append(
                ExperimentRow(
                    method=policy.name,
                    x_label=point.label,
                    update_frequency=metrics.update_frequency,
                    update_events=metrics.update_events,
                    packets=metrics.packets_total,
                    cpu_seconds=metrics.server_cpu_seconds,
                    metrics=metrics,
                )
            )
    return ExperimentResult(figure=figure, x_name=x_name, rows=rows)


def format_table(result: ExperimentResult, measure: str = "update_events") -> str:
    """Render one measure as a method x sweep table (paper-style)."""
    series = result.series(measure)
    x_labels: list[str] = []
    for row in result.rows:
        if row.x_label not in x_labels:
            x_labels.append(row.x_label)
    header = f"{result.figure} — {measure} (columns: {result.x_name})"
    lines = [header, "-" * len(header)]
    name_w = max(len(m) for m in series) + 2
    lines.append(" " * name_w + "  ".join(f"{x:>12}" for x in x_labels))
    for method, values in series.items():
        by_x = dict(values)
        cells = []
        for x in x_labels:
            v = by_x.get(x)
            if v is None:
                cells.append(f"{'-':>12}")
            elif isinstance(v, float) and measure == "cpu_seconds":
                cells.append(f"{v:>12.3f}")
            elif isinstance(v, float) and v < 1.0:
                cells.append(f"{v:>12.4f}")
            else:
                cells.append(f"{v:>12.0f}")
        lines.append(f"{method:<{name_w}}" + "  ".join(cells))
    return "\n".join(lines)
