"""CLI for regenerating the paper's figures.

Usage:

    python -m repro.experiments fig13 [--scale small|bench|full]
                                      [--dataset geolife|oldenburg]
    python -m repro.experiments all --scale bench

Prints, for each figure, the three series the paper plots: update
events (and frequency), communication cost in packets, and CPU seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import format_table
from repro.experiments.scales import SCALES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument(
        "--dataset", choices=["geolife", "oldenburg"], default="geolife"
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        builder = ALL_FIGURES[name]
        start = time.perf_counter()
        result = builder(
            scale=scale,
            dataset_name=args.dataset,
            progress=lambda msg: print(f"  .. {msg}", file=sys.stderr),
        )
        elapsed = time.perf_counter() - start
        print()
        for measure in ("update_events", "update_frequency", "packets", "cpu_seconds"):
            print(format_table(result, measure))
            print()
        print(f"[{name} regenerated in {elapsed:.1f}s at scale={scale.name}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
