"""Per-figure experiment builders (Section 7, Figures 13-19).

Every function returns an :class:`ExperimentResult` holding the same
series the corresponding paper figure plots.  The ``scale`` argument
selects workload size (see :mod:`repro.experiments.scales`); the
``dataset_name`` selects the GeoLife-like or Oldenburg-like trajectory
substitute.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.harness import ExperimentResult, SweepPoint, run_experiment
from repro.experiments.scales import SMALL, ExperimentScale
from repro.gnn.aggregate import Aggregate
from repro.simulation.policies import (
    Policy,
    circle_policy,
    tile_d_b_policy,
    tile_d_policy,
    tile_policy,
)
from repro.workloads.datasets import Dataset, DatasetSpec, build_dataset

GROUP_SIZES = (2, 3, 4, 5, 6)  # Table 2
DATA_FRACTIONS = (0.25, 0.5, 0.75, 1.0)  # Table 2
SPEED_FRACTIONS = (0.25, 0.5, 0.75, 1.0)  # Table 2
BUFFER_VALUES = (10, 25, 50, 75, 100)  # Fig. 16/19 x-axis


def _dataset(scale: ExperimentScale, dataset_name: str) -> Dataset:
    spec = DatasetSpec(
        name=dataset_name,
        n_pois=scale.n_pois,
        n_trajectories=scale.n_trajectories,
        n_timestamps=scale.n_timestamps,
        speed=scale.speed,
    )
    return build_dataset(spec)


def _main_policies(scale: ExperimentScale, objective: Aggregate) -> list[Policy]:
    """Circle / Tile / Tile-D — the lineup of Figs. 13-15 and 17-18."""
    kwargs = dict(
        objective=objective, alpha=scale.alpha, split_level=scale.split_level
    )
    return [circle_policy(objective), tile_policy(**kwargs), tile_d_policy(**kwargs)]


def _group_size_figure(
    figure: str,
    objective: Aggregate,
    scale: ExperimentScale,
    dataset_name: str,
    group_sizes: Sequence[int],
    progress: Callable[[str], None] | None,
) -> ExperimentResult:
    ds = _dataset(scale, dataset_name)
    points = []
    for m in group_sizes:
        if m > len(ds.trajectories):
            continue
        points.append(
            SweepPoint(label=str(m), groups=ds.groups(m, scale.max_groups), tree=ds.tree)
        )
    return run_experiment(
        figure, "m", points, _main_policies(scale, objective), progress=progress
    )


def fig13_group_size(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    group_sizes: Sequence[int] = GROUP_SIZES,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 13: vary the user group size m (MPN)."""
    return _group_size_figure(
        "fig13", Aggregate.MAX, scale, dataset_name, group_sizes, progress
    )


def fig17_sum_group_size(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    group_sizes: Sequence[int] = GROUP_SIZES,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 17: vary the user group size m (Sum-MPN)."""
    return _group_size_figure(
        "fig17", Aggregate.SUM, scale, dataset_name, group_sizes, progress
    )


def _data_size_figure(
    figure: str,
    objective: Aggregate,
    scale: ExperimentScale,
    dataset_name: str,
    fractions: Sequence[float],
    progress: Callable[[str], None] | None,
) -> ExperimentResult:
    ds = _dataset(scale, dataset_name)
    m = scale.default_group_size
    points = []
    for frac in fractions:
        variant = ds.with_poi_fraction(frac)
        points.append(
            SweepPoint(
                label=f"{frac:g}N",
                groups=variant.groups(m, scale.max_groups),
                tree=variant.tree,
            )
        )
    return run_experiment(
        figure, "n", points, _main_policies(scale, objective), progress=progress
    )


def fig14_data_size(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    fractions: Sequence[float] = DATA_FRACTIONS,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 14: vary the POI count n as a fraction of N (MPN)."""
    return _data_size_figure(
        "fig14", Aggregate.MAX, scale, dataset_name, fractions, progress
    )


def fig18_sum_data_size(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    fractions: Sequence[float] = DATA_FRACTIONS,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 18: vary the POI count n (Sum-MPN)."""
    return _data_size_figure(
        "fig18", Aggregate.SUM, scale, dataset_name, fractions, progress
    )


def fig15_speed(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    fractions: Sequence[float] = SPEED_FRACTIONS,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 15: vary the user speed as a fraction of the limit V (MPN)."""
    ds = _dataset(scale, dataset_name)
    m = scale.default_group_size
    points = []
    for frac in fractions:
        variant = ds.with_speed_fraction(frac)
        points.append(
            SweepPoint(
                label=f"{frac:g}V",
                groups=variant.groups(m, scale.max_groups),
                tree=variant.tree,
            )
        )
    return run_experiment(
        "fig15", "speed", points, _main_policies(scale, Aggregate.MAX), progress=progress
    )


def _buffering_figure(
    figure: str,
    objective: Aggregate,
    scale: ExperimentScale,
    dataset_name: str,
    b_values: Sequence[int],
    progress: Callable[[str], None] | None,
) -> ExperimentResult:
    """Figs. 16/19: Tile-D vs Tile-D-b as a function of b.

    Tile-D is b-independent; the paper plots it as a flat reference
    line, which we reproduce by running it once per x-value.
    """
    ds = _dataset(scale, dataset_name)
    m = scale.default_group_size
    groups = ds.groups(m, scale.max_groups)
    kwargs = dict(
        objective=objective, alpha=scale.alpha, split_level=scale.split_level
    )
    rows = []
    reference = tile_d_policy(**kwargs)
    for b in b_values:
        point = SweepPoint(label=str(b), groups=groups, tree=ds.tree)
        buffered = tile_d_b_policy(b=b, **kwargs)
        buffered = Policy("Tile-D-b", buffered.kind, buffered.objective, buffered.tile_config)
        result = run_experiment(
            figure, "b", [point], [reference, buffered], progress=progress
        )
        rows.extend(result.rows)
    return ExperimentResult(figure=figure, x_name="b", rows=rows)


def fig16_buffering(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    b_values: Sequence[int] = BUFFER_VALUES,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 16: effect of the buffering parameter b (MPN)."""
    return _buffering_figure(
        "fig16", Aggregate.MAX, scale, dataset_name, b_values, progress
    )


def fig19_sum_buffering(
    scale: ExperimentScale = SMALL,
    dataset_name: str = "geolife",
    b_values: Sequence[int] = BUFFER_VALUES,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Fig. 19: effect of the buffering parameter b (Sum-MPN)."""
    return _buffering_figure(
        "fig19", Aggregate.SUM, scale, dataset_name, b_values, progress
    )


ALL_FIGURES = {
    "fig13": fig13_group_size,
    "fig14": fig14_data_size,
    "fig15": fig15_speed,
    "fig16": fig16_buffering,
    "fig17": fig17_sum_group_size,
    "fig18": fig18_sum_data_size,
    "fig19": fig19_sum_buffering,
}
