"""Persistence for experiment results: CSV and JSON round-trips.

Long sweeps are expensive; saving rows lets a user regenerate tables
and charts (``repro.viz.chart``) without re-running the simulation, and
diff results across code revisions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.harness import ExperimentResult, ExperimentRow

_FIELDS = (
    "method",
    "x_label",
    "update_frequency",
    "update_events",
    "packets",
    "cpu_seconds",
)


def result_to_dict(result: ExperimentResult) -> dict:
    return {
        "figure": result.figure,
        "x_name": result.x_name,
        "rows": [
            {field: getattr(row, field) for field in _FIELDS}
            for row in result.rows
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    try:
        rows = [
            ExperimentRow(
                method=entry["method"],
                x_label=entry["x_label"],
                update_frequency=float(entry["update_frequency"]),
                update_events=int(entry["update_events"]),
                packets=int(entry["packets"]),
                cpu_seconds=float(entry["cpu_seconds"]),
            )
            for entry in payload["rows"]
        ]
        return ExperimentResult(
            figure=payload["figure"], x_name=payload["x_name"], rows=rows
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed experiment payload: {exc}") from exc


def save_json(result: ExperimentResult, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2), encoding="utf-8"
    )


def load_json(path: str | Path) -> ExperimentResult:
    return result_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_csv(result: ExperimentResult, path: str | Path) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(("figure", "x_name") + _FIELDS)
        for row in result.rows:
            writer.writerow(
                (result.figure, result.x_name)
                + tuple(getattr(row, field) for field in _FIELDS)
            )


def load_csv(path: str | Path) -> ExperimentResult:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        rows = []
        figure = ""
        x_name = ""
        for record in reader:
            figure = record["figure"]
            x_name = record["x_name"]
            rows.append(
                ExperimentRow(
                    method=record["method"],
                    x_label=record["x_label"],
                    update_frequency=float(record["update_frequency"]),
                    update_events=int(record["update_events"]),
                    packets=int(record["packets"]),
                    cpu_seconds=float(record["cpu_seconds"]),
                )
            )
    if not rows:
        raise ValueError(f"no rows in {path}")
    return ExperimentResult(figure=figure, x_name=x_name, rows=rows)
